package update

import (
	"context"
	"fmt"
	"sort"

	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/xmltree"
)

// plan stages one mutation's effects. Planning never writes: every effect
// lands in the staging image and its DML statement list, to be audited and
// then applied as one atomic batch.
func (a *Applier) plan(ctx context.Context, st *staging, idx int, m Mutation) error {
	targets, err := a.resolve(ctx, idx, m)
	if err != nil {
		return err
	}

	var elem *xmltree.Node
	if m.Op == OpInsert || m.Op == OpReplace {
		doc, err := xmltree.ParseString(m.XML)
		if err != nil {
			return &Error{Kind: ErrConform, Index: idx, Path: m.Path, Msg: "parsing subtree: " + err.Error()}
		}
		elem = doc.Root
	}

	for _, t := range targets {
		for _, id := range t.ids {
			if err := ctx.Err(); err != nil {
				return err
			}
			switch m.Op {
			case OpInsert:
				if err := a.planInsert(ctx, st, idx, m, t, id, elem); err != nil {
					return err
				}
			case OpDelete:
				if err := a.planDelete(ctx, st, idx, t.rel, id); err != nil {
					return err
				}
			case OpReplace:
				if err := a.planReplace(ctx, st, idx, m, t, id, elem); err != nil {
					return err
				}
			default:
				return &Error{Kind: ErrPath, Index: idx, Path: m.Path, Msg: "unknown operation " + m.Op.String()}
			}
		}
	}
	return nil
}

// planInsert attaches the subtree under one target tuple. The subtree must
// conform at a schema child of the target's node — alignment picks the first
// child (in schema declaration order) whose subtree accepts the element,
// exactly as document-root shredding does.
func (a *Applier) planInsert(ctx context.Context, st *staging, idx int, m Mutation, t target, ownerID int64, elem *xmltree.Node) error {
	sn := a.s.Node(t.sid)
	var al *shred.Alignment
	var pending []pendingCond
	for _, e := range sn.Children() {
		got, err := shred.AlignAt(a.s, elem, e.To)
		if err != nil {
			continue
		}
		al = got
		if e.Cond != nil {
			pending = append(pending, pendingCond{col: e.Cond.Column, value: e.Cond.Value})
		}
		break
	}
	if al == nil {
		return &Error{Kind: ErrConform, Index: idx, Path: m.Path,
			Msg: fmt.Sprintf("subtree <%s> conforms to no child of %s", elem.Label, sn.Name)}
	}

	ownRow, ok, err := st.lookup(ctx, t.rel, ownerID)
	if err != nil {
		return fmt.Errorf("update: loading target %s.id=%d: %w", t.rel, ownerID, err)
	}
	if !ok {
		return &Error{Kind: ErrConflict, Index: idx, Path: m.Path,
			Msg: fmt.Sprintf("target %s.id=%d was removed earlier in the batch", t.rel, ownerID)}
	}
	own := &owner{rel: t.rel, id: ownerID, row: cloneRow(ownRow)}
	return a.walkSubtree(st, idx, m, al, elem, own, pending)
}

// planDelete removes one target tuple and its whole subtree: a breadth-first
// sweep over the batch's current view (staged inserts under the target are
// swept too), then one DELETE ... WHERE id IN (...) per touched relation.
func (a *Applier) planDelete(ctx context.Context, st *staging, idx int, rel string, id int64) error {
	if st.isDeleted(rel, id) {
		return nil // another mutation already removed it
	}
	view := &overlayProbe{base: a.probe, st: st}
	doomed := map[string][]int64{}

	type ref struct {
		rel string
		id  int64
	}
	frontier := []ref{{rel, id}}
	st.stageDelete(idx, rel, id)
	doomed[rel] = append(doomed[rel], id)
	for len(frontier) > 0 {
		parents := make([]int64, 0, len(frontier))
		for _, r := range frontier {
			parents = append(parents, r.id)
		}
		sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
		frontier = frontier[:0]
		for _, crel := range a.s.Relations() {
			if err := ctx.Err(); err != nil {
				return err
			}
			rows, err := view.FetchByParent(ctx, crel, parents)
			if err != nil {
				return fmt.Errorf("update: sweeping children in %s: %w", crel, err)
			}
			for _, row := range rows {
				if len(row) == 0 || row[0].IsNull() || row[0].Kind() != relational.KindInt {
					continue
				}
				cid := row[0].AsInt()
				if st.isDeleted(crel, cid) {
					continue
				}
				st.stageDelete(idx, crel, cid)
				doomed[crel] = append(doomed[crel], cid)
				frontier = append(frontier, ref{crel, cid})
			}
		}
	}

	rels := make([]string, 0, len(doomed))
	for r := range doomed {
		rels = append(rels, r)
	}
	sort.Strings(rels)
	for _, r := range rels {
		ids := doomed[r]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		list := make([]sqlast.Lit, len(ids))
		for i, v := range ids {
			list[i] = sqlast.IntLit(v)
		}
		st.appendStmt(&sqlast.DeleteStmt{Table: r,
			Where: sqlast.In{Left: sqlast.ColRef{Column: schema.IDColumn}, List: list}})
	}
	return nil
}

// planReplace substitutes a new subtree for one target tuple at the same
// schema position: the old subtree is deleted, and the replacement root
// inherits the old tuple's parent link and materialized edge-condition
// columns (they are what placed the old tuple at this position, and the new
// tuple takes the same position by definition).
func (a *Applier) planReplace(ctx context.Context, st *staging, idx int, m Mutation, t target, id int64, elem *xmltree.Node) error {
	al, err := shred.AlignAt(a.s, elem, t.sid)
	if err != nil {
		return &Error{Kind: ErrConform, Index: idx, Path: m.Path,
			Msg: fmt.Sprintf("replacement <%s> does not conform at %s: %v", elem.Label, a.s.Node(t.sid).Name, err)}
	}
	oldRow, ok, err := st.lookup(ctx, t.rel, id)
	if err != nil {
		return fmt.Errorf("update: loading target %s.id=%d: %w", t.rel, id, err)
	}
	if !ok {
		return &Error{Kind: ErrConflict, Index: idx, Path: m.Path,
			Msg: fmt.Sprintf("target %s.id=%d was removed earlier in the batch", t.rel, id)}
	}

	if err := a.planDelete(ctx, st, idx, t.rel, id); err != nil {
		return err
	}

	// Re-materialize the old tuple's placement as pending conditions for the
	// replacement root; its own node conditions are re-applied by the walk
	// and must agree (the conflict check catches mismatched placements).
	ts := a.tss[t.rel]
	var pending []pendingCond
	for _, c := range a.defs[t.rel].CondColumns {
		if v := rowValue(ts, oldRow, c.Name); !v.IsNull() {
			pending = append(pending, pendingCond{col: c.Name, value: v})
		}
	}
	var own *owner
	if pid, ok := parentID(oldRow); ok {
		// Only the id feeds the new tuple's parent link; the relation is
		// irrelevant because the replacement root is itself tuple-producing.
		own = &owner{id: pid, parentOnly: true}
	}
	return a.walkSubtree(st, idx, m, al, elem, own, pending)
}

// pendingCond mirrors the shredder's pending edge conditions: a column value
// owed to the next tuple-producing element down the walk.
type pendingCond struct {
	col   string
	value relational.Value
}

// owner mirrors the shredder's nearest-annotated-ancestor state. fresh marks
// tuples this batch creates (their rows are built up before the INSERT is
// emitted); existing owners get UPDATE statements per written value column.
type owner struct {
	rel        string
	id         int64
	row        relational.Row
	fresh      bool
	parentOnly bool // only id is valid (replace root's parent link)
	mutIdx     int
}

// walkSubtree decomposes an aligned subtree exactly as the shredder's walk
// does — same owner threading, same pending-condition semantics, same
// conflict checks — but emits staged DML instead of direct store inserts.
func (a *Applier) walkSubtree(st *staging, idx int, m Mutation, al *shred.Alignment, elem *xmltree.Node, own *owner, pending []pendingCond) error {
	var created []*owner

	var walk func(n *xmltree.Node, own *owner, pending []pendingCond) error
	walk = func(n *xmltree.Node, own *owner, pending []pendingCond) error {
		sid, ok := al.SchemaNodeOf(n)
		if !ok {
			return fmt.Errorf("update: internal: element <%s> not aligned", n.Label)
		}
		sn := a.s.Node(sid)

		cur := own
		if sn.HasRelation() {
			ts := a.tss[sn.Relation]
			row := make(relational.Row, len(ts.Columns))
			for i := range row {
				row[i] = relational.Null
			}
			id := a.freshID()
			row[0] = relational.Int(id)
			if own != nil {
				row[1] = relational.Int(own.id)
			}
			set := func(col string, v relational.Value) error {
				ci := ts.ColumnIndex(col)
				if ci < 0 {
					return &Error{Kind: ErrConform, Index: idx, Path: m.Path,
						Msg: fmt.Sprintf("relation %s has no column %s", sn.Relation, col)}
				}
				if prev := row[ci]; !prev.IsNull() && !prev.Identical(v) {
					return &Error{Kind: ErrConflict, Index: idx, Path: m.Path,
						Msg: fmt.Sprintf("relation %s: conflicting conditions on column %s", sn.Relation, col)}
				}
				row[ci] = v
				return nil
			}
			for _, nc := range sn.Conds {
				if err := set(nc.Column, nc.Value); err != nil {
					return err
				}
			}
			for _, pc := range pending {
				if err := set(pc.col, pc.value); err != nil {
					return err
				}
			}
			cur = &owner{rel: sn.Relation, id: id, row: row, fresh: true, mutIdx: idx}
			created = append(created, cur)
			st.stageInsert(idx, sn.Relation, id, row)
			pending = nil
		}

		if sn.Column != "" && sn.Column != schema.IDColumn {
			ownRel, err := a.s.OwnerRelation(sid)
			if err != nil {
				return &Error{Kind: ErrConform, Index: idx, Path: m.Path, Msg: err.Error()}
			}
			if cur == nil || cur.parentOnly || cur.rel != ownRel {
				return &Error{Kind: ErrConform, Index: idx, Path: m.Path,
					Msg: fmt.Sprintf("element <%s>: value column %s.%s has no live owner tuple", n.Label, ownRel, sn.Column)}
			}
			ts := a.tss[ownRel]
			ci := ts.ColumnIndex(sn.Column)
			if ci < 0 || ci >= len(cur.row) {
				return &Error{Kind: ErrConform, Index: idx, Path: m.Path,
					Msg: fmt.Sprintf("relation %s has no column %s", ownRel, sn.Column)}
			}
			if !cur.row[ci].IsNull() {
				if cur.fresh {
					return &Error{Kind: ErrConflict, Index: idx, Path: m.Path,
						Msg: fmt.Sprintf("element <%s>: column %s.%s set twice", n.Label, ownRel, sn.Column)}
				}
				return &Error{Kind: ErrConflict, Index: idx, Path: m.Path,
					Msg: fmt.Sprintf("element <%s>: column %s.%s already holds a value on tuple id=%d; replace the enclosing element instead", n.Label, ownRel, sn.Column, cur.id)}
			}
			v := relational.String(n.Text)
			cur.row[ci] = v
			if !cur.fresh {
				st.stageRewrite(idx, ownRel, cur.id, cur.row)
				st.appendStmt(&sqlast.UpdateStmt{Table: ownRel,
					Set:   []sqlast.Assign{{Column: sn.Column, Value: sqlast.Lit{Value: v}}},
					Where: sqlast.Eq(sqlast.ColRef{Column: schema.IDColumn}, sqlast.IntLit(cur.id))})
			}
		}

		for _, c := range n.Children {
			cid, ok := al.SchemaNodeOf(c)
			if !ok {
				return fmt.Errorf("update: internal: element <%s> not aligned", c.Label)
			}
			e := a.s.EdgeBetween(sid, cid)
			if e == nil {
				return fmt.Errorf("update: internal: no schema edge %s -> %s", sn.Name, a.s.Node(cid).Name)
			}
			childPending := pending
			if e.Cond != nil {
				childPending = append(append([]pendingCond(nil), pending...),
					pendingCond{col: e.Cond.Column, value: e.Cond.Value})
			}
			if err := walk(c, cur, childPending); err != nil {
				return err
			}
		}
		return nil
	}

	if err := walk(elem, own, pending); err != nil {
		return err
	}

	// One INSERT per relation, rows in creation (document) order.
	byRel := map[string]*sqlast.InsertStmt{}
	var order []string
	for _, ow := range created {
		ins := byRel[ow.rel]
		if ins == nil {
			ts := a.tss[ow.rel]
			cols := make([]string, len(ts.Columns))
			for i, c := range ts.Columns {
				cols[i] = c.Name
			}
			ins = &sqlast.InsertStmt{Table: ow.rel, Columns: cols}
			byRel[ow.rel] = ins
			order = append(order, ow.rel)
		}
		vals := make([]sqlast.Lit, len(ow.row))
		for i, v := range ow.row {
			vals[i] = sqlast.Lit{Value: v}
		}
		ins.Rows = append(ins.Rows, vals)
	}
	for _, rel := range order {
		st.appendStmt(byRel[rel])
	}
	return nil
}

func cloneRow(r relational.Row) relational.Row {
	out := make(relational.Row, len(r))
	copy(out, r)
	return out
}
