// Package update implements the transactional XML mutation path: a batch of
// subtree insertions, deletions and replacements addressed by path
// expressions is translated into relational DML over the shredded instance,
// validated against the mapping's integrity constraint (P1–P3) *before*
// anything is written, and then applied atomically through a backend's DML
// capability — a failed or faulted statement rolls the whole batch back to
// the pre-batch instance.
//
// The package leans on the same machinery queries use: targets are resolved
// by building the path/schema cross product (pathid) and running the
// translated SELECTs, inserted subtrees are aligned and decomposed exactly
// as the shredder would (shred.AlignAt plus the same owner/pending-condition
// walk), and validity is judged by the incremental auditor
// (integrity.AuditIncremental) over an overlay that shows the batch's staged
// effects as if they had been applied. Because validation precedes
// application, an invalid batch is rejected with nothing written even on
// backends that cannot roll back after commit.
package update

import (
	"context"
	"fmt"
	"sync"

	"xmlsql/internal/backend"
	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// Op is the kind of one mutation.
type Op int

const (
	// OpInsert adds a subtree under every element the path selects.
	OpInsert Op = iota
	// OpDelete removes every element the path selects, with its subtree.
	OpDelete
	// OpReplace substitutes a new subtree for every element the path
	// selects, preserving the element's schema position.
	OpReplace
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpReplace:
		return "replace"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Mutation is one edit: an operation, the path expression selecting its
// target elements, and (for insert/replace) the XML subtree to attach.
//
// Targets must be tuple-producing elements — path expressions ending at a
// value leaf or at an element the mapping does not materialize are rejected
// with ErrTarget, since there is no tuple to anchor the edit to. To change a
// leaf value, replace its enclosing element.
type Mutation struct {
	Op   Op     `json:"op"`
	Path string `json:"path"`
	XML  string `json:"xml,omitempty"`
}

// Batch is an atomic group of mutations. Every mutation resolves its targets
// against the pre-batch instance (snapshot semantics): a path never selects
// an element another mutation of the same batch inserted. Effects still
// compose — deleting an element removes subtrees an earlier mutation staged
// beneath it, and the whole batch is audited as one candidate instance.
type Batch struct {
	Muts []Mutation `json:"mutations"`
}

// ErrorKind classifies batch rejections.
type ErrorKind int

const (
	// ErrPath: the path expression is invalid, or matches the schema in a
	// way the update path does not support (recursive reachability that
	// cannot be enumerated).
	ErrPath ErrorKind = iota
	// ErrTarget: the path selects no tuple-producing schema position.
	ErrTarget
	// ErrConform: an inserted subtree does not conform at the position the
	// mutation lands it in.
	ErrConform
	// ErrConflict: the batch contradicts itself or the existing data
	// without breaking P1–P3 structurally (e.g. a value column set twice).
	ErrConflict
	// ErrIntegrity: applying the batch would violate the mapping's
	// integrity constraint; Report carries the violations.
	ErrIntegrity
	// ErrUnsupported: the backend cannot apply updates atomically.
	ErrUnsupported
)

// String names the kind.
func (k ErrorKind) String() string {
	switch k {
	case ErrPath:
		return "path"
	case ErrTarget:
		return "target"
	case ErrConform:
		return "conform"
	case ErrConflict:
		return "conflict"
	case ErrIntegrity:
		return "integrity"
	case ErrUnsupported:
		return "unsupported"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Error is a typed batch rejection. It always carries the path expression of
// the violating mutation (and its index in the batch), so callers can report
// which edit was at fault; integrity rejections additionally carry the
// auditor's report. A rejected batch is atomic: nothing was applied.
type Error struct {
	Kind   ErrorKind
	Index  int    // index of the violating mutation in the batch
	Path   string // that mutation's path expression
	Msg    string
	Report *integrity.Report // set for ErrIntegrity
}

// Error renders the rejection.
func (e *Error) Error() string {
	s := fmt.Sprintf("update: mutation %d (%s): %s: %s", e.Index, e.Path, e.Kind, e.Msg)
	if e.Report != nil && len(e.Report.Violations) > 0 {
		s += ": " + e.Report.Violations[0].String()
	}
	return s
}

// Result reports one applied batch.
type Result struct {
	// Touched is the batch's tuple footprint; its Relations() drive scoped
	// cache and statistics invalidation.
	Touched integrity.Touched
	// Stmts counts the DML statements applied.
	Stmts int
	// Statements is the applied DML, in execution order (diagnostics; tools
	// render them in a dialect).
	Statements []sqlast.DMLStmt
	// Audit is the post-apply incremental audit over the live instance. A
	// batch only applies if its pre-apply overlay audit was clean, so Audit
	// is clean unless the instance was already dirty outside the batch's
	// neighborhood responsibility.
	Audit *integrity.Report
	// Preexisting, when non-nil, is the overlay audit showing violations
	// that predate the batch (the same violations reproduce without the
	// batch's effects). The batch itself is valid and was applied; callers
	// decide the trust consequence.
	Preexisting *integrity.Report
}

// Applier plans and applies mutation batches for one mapping over one
// backend. It serializes batches internally (one writer at a time); readers
// are the backend's concern.
type Applier struct {
	s     *schema.Schema
	src   integrity.Source
	probe integrity.Probe
	dml   backend.DML
	defs  map[string]*schema.RelationDef
	tss   map[string]*relational.TableSchema
	opts  Options

	mu     sync.Mutex
	nextID int64 // next fresh tuple id; 0 until first use
}

// Options tune an Applier. The zero value is the default.
type Options struct {
	// Audit tunes the integrity audits the applier runs.
	Audit integrity.Options
}

// New prepares an applier. src resolves targets (any engine that executes
// translated queries), probe answers the incremental audit's keyed fetches,
// and dml applies the planned statements atomically.
func New(s *schema.Schema, src integrity.Source, probe integrity.Probe, dml backend.DML, opts Options) (*Applier, error) {
	defs, err := s.DeriveRelations()
	if err != nil {
		return nil, fmt.Errorf("update: %w", err)
	}
	tss := make(map[string]*relational.TableSchema, len(defs))
	for rel, def := range defs {
		tss[rel] = def.TableSchema()
	}
	return &Applier{s: s, src: src, probe: probe, dml: dml, defs: defs, tss: tss, opts: opts}, nil
}

// ForStore builds an applier over a bare in-memory store, for tests and
// tools that bypass the backend layer.
func ForStore(s *schema.Schema, store *relational.Store, opts Options) (*Applier, error) {
	return New(s, integrity.StoreSource(store), integrity.StoreProbe(store), backend.NewMemOn(store), opts)
}

// Apply plans, validates and applies one batch. On success the returned
// Result carries the batch's footprint and the post-apply audit. On failure
// the error is a *Error (planning or validation rejections — nothing was
// applied) or the backend's error (the backend rolled the batch back).
func (a *Applier) Apply(ctx context.Context, b Batch) (*Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	if len(b.Muts) == 0 {
		return &Result{Audit: &integrity.Report{Schema: a.s.Name}}, nil
	}
	if err := a.ensureNextID(ctx); err != nil {
		return nil, err
	}

	st := newStaging(a)
	for i, m := range b.Muts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := a.plan(ctx, st, i, m); err != nil {
			return nil, err
		}
	}

	touched := st.touched()
	overlay := &overlayProbe{base: a.probe, st: st}
	rep, err := integrity.AuditIncrementalOpts(ctx, overlay, a.s, touched, a.opts.Audit)
	if err != nil {
		return nil, fmt.Errorf("update: pre-apply audit: %w", err)
	}
	var preexisting *integrity.Report
	if !rep.Clean() {
		// Distinguish dirt the batch would introduce from dirt that was
		// already there: the same neighborhood audited without the batch's
		// effects. Violations absent from the base report are the batch's.
		base, berr := integrity.AuditIncrementalOpts(ctx, a.probe, a.s, st.baseTouched(), a.opts.Audit)
		if berr != nil {
			return nil, fmt.Errorf("update: base audit: %w", berr)
		}
		if v, ok := newViolation(rep, base); ok {
			idx := st.mutationFor(v.Relation, v.TupleID)
			path := ""
			if idx >= 0 && idx < len(b.Muts) {
				path = b.Muts[idx].Path
			}
			if idx < 0 {
				idx = 0
				path = b.Muts[0].Path
			}
			return nil, &Error{Kind: ErrIntegrity, Index: idx, Path: path,
				Msg: "batch would violate the mapping's integrity constraint", Report: rep}
		}
		preexisting = rep
	}

	stmts := st.statements()
	if len(stmts) > 0 {
		if err := a.dml.ApplyDML(ctx, stmts); err != nil {
			return nil, fmt.Errorf("update: apply: %w", err)
		}
	}

	post, err := integrity.AuditIncrementalOpts(ctx, a.probe, a.s, touched, a.opts.Audit)
	if err != nil {
		return nil, fmt.Errorf("update: post-apply audit: %w", err)
	}
	return &Result{Touched: touched, Stmts: len(stmts), Statements: stmts, Audit: post, Preexisting: preexisting}, nil
}

// newViolation reports a violation present in rep but not in base, if any.
func newViolation(rep, base *integrity.Report) (integrity.Violation, bool) {
	seen := make(map[string]bool, len(base.Violations))
	for _, v := range base.Violations {
		seen[violationKey(v)] = true
	}
	for _, v := range rep.Violations {
		if !seen[violationKey(v)] {
			return v, true
		}
	}
	// Truncated reports cannot be compared violation-by-violation; treat a
	// higher total as batch-introduced dirt, anchored to the first recorded
	// violation.
	if rep.Total > base.Total && len(rep.Violations) > 0 {
		return rep.Violations[0], true
	}
	return integrity.Violation{}, false
}

func violationKey(v integrity.Violation) string {
	return fmt.Sprintf("%v|%s|%d|%s|%s", v.Property, v.Relation, v.TupleID, v.Column, v.Detail)
}

// ensureNextID discovers the highest tuple id in the instance once per
// applier, so fresh ids never collide. Later batches advance the counter
// locally; the primary-key guard at apply time backstops external writers.
func (a *Applier) ensureNextID(ctx context.Context) error {
	if a.nextID > 0 {
		return nil
	}
	max := int64(0)
	for _, rel := range a.s.Relations() {
		sel := &sqlast.Select{
			Cols: []sqlast.SelectItem{sqlast.Col(rel, schema.IDColumn)},
			From: []sqlast.FromItem{sqlast.From(rel, rel)},
		}
		res, err := a.src.Execute(ctx, sqlast.SingleSelect(sel))
		if err != nil {
			return fmt.Errorf("update: scanning %s ids: %w", rel, err)
		}
		for _, row := range res.Rows {
			if len(row) > 0 && !row[0].IsNull() && row[0].Kind() == relational.KindInt && row[0].AsInt() > max {
				max = row[0].AsInt()
			}
		}
	}
	a.nextID = max + 1
	return nil
}

func (a *Applier) freshID() int64 {
	id := a.nextID
	a.nextID++
	return id
}
