package update

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

func newXMarkStore(t *testing.T, cfg workloads.XMarkConfig) (*schema.Schema, *relational.Store) {
	t.Helper()
	s := workloads.XMark()
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, workloads.GenerateXMark(cfg)); err != nil {
		t.Fatalf("shred: %v", err)
	}
	return s, store
}

func newApplier(t *testing.T, s *schema.Schema, store *relational.Store) *Applier {
	t.Helper()
	a, err := ForStore(s, store, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func fullAudit(t *testing.T, s *schema.Schema, store *relational.Store) *integrity.Report {
	t.Helper()
	rep, err := integrity.Audit(context.Background(), integrity.StoreSource(store), s)
	if err != nil {
		t.Fatalf("full audit: %v", err)
	}
	return rep
}

func TestInsertSubtree(t *testing.T) {
	s, store := newXMarkStore(t, workloads.XMarkConfig{ItemsPerContinent: 3, CategoriesPerItem: 1, NumCategories: 5, Seed: 1})
	a := newApplier(t, s, store)
	before := store.Table("InCat").Len()

	res, err := a.Apply(context.Background(), Batch{Muts: []Mutation{{
		Op: OpInsert, Path: "/Site/Regions/Africa/Item",
		XML: "<InCategory><Category>fresh</Category></InCategory>",
	}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := store.Table("InCat").Len(); got != before+3 {
		t.Fatalf("InCat rows = %d, want %d", got, before+3)
	}
	if !res.Audit.Clean() {
		t.Fatalf("post-apply audit dirty: %s", res.Audit)
	}
	if got := res.Touched.Relations(); len(got) != 1 || got[0] != "InCat" {
		t.Fatalf("touched relations = %v, want [InCat]", got)
	}
	if len(res.Touched.Written) != 3 {
		t.Fatalf("written = %v, want 3 refs", res.Touched.Written)
	}
	if rep := fullAudit(t, s, store); !rep.Clean() {
		t.Fatalf("full audit dirty after insert: %s", rep)
	}
}

func TestInsertValueLeafUpdatesOwner(t *testing.T) {
	s := workloads.XMark()
	store := relational.NewStore()
	// One nameless Africa item: the name insert must land on its tuple.
	doc := &xmltree.Document{Root: xmltree.NewElem("Site",
		xmltree.NewElem("Regions",
			xmltree.NewElem("Africa", xmltree.NewElem("Item"))))}
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	a := newApplier(t, s, store)

	res, err := a.Apply(context.Background(), Batch{Muts: []Mutation{{
		Op: OpInsert, Path: "//Item", XML: "<name>late-name</name>",
	}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := res.Touched.Relations(); len(got) != 1 || got[0] != "Item" {
		t.Fatalf("touched relations = %v, want [Item]", got)
	}
	itemTS := store.Table("Item").Schema()
	ni := itemTS.ColumnIndex("name")
	rows := store.Table("Item").Rows()
	if len(rows) != 1 || rows[0][ni].AsString() != "late-name" {
		t.Fatalf("item name not updated: %v", rows)
	}
	// The same insert again must now conflict: the column already holds a
	// value, and nothing may be half-applied.
	pre := store.Dump()
	_, err = a.Apply(context.Background(), Batch{Muts: []Mutation{{
		Op: OpInsert, Path: "//Item", XML: "<name>other</name>",
	}}})
	var uerr *Error
	if !errors.As(err, &uerr) || uerr.Kind != ErrConflict {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	if uerr.Path != "//Item" {
		t.Fatalf("error path = %q, want //Item", uerr.Path)
	}
	if store.Dump() != pre {
		t.Fatal("store changed on rejected batch")
	}
}

func TestDeleteSubtreeSweepsDescendants(t *testing.T) {
	s, store := newXMarkStore(t, workloads.XMarkConfig{ItemsPerContinent: 2, CategoriesPerItem: 2, NumCategories: 5, Seed: 2})
	a := newApplier(t, s, store)

	res, err := a.Apply(context.Background(), Batch{Muts: []Mutation{{
		Op: OpDelete, Path: "//Item",
	}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := store.Table("Item").Len(); got != 0 {
		t.Fatalf("Item rows = %d, want 0", got)
	}
	if got := store.Table("InCat").Len(); got != 0 {
		t.Fatalf("InCat rows = %d after deleting items, want 0 (descendants must be swept)", got)
	}
	if got := store.Table("Site").Len(); got != 1 {
		t.Fatalf("Site rows = %d, want 1", got)
	}
	if !res.Audit.Clean() {
		t.Fatalf("post-apply audit dirty: %s", res.Audit)
	}
	if len(res.Touched.Deleted) == 0 || len(res.Touched.Written) != 0 {
		t.Fatalf("touched = %+v, want only deletions", res.Touched)
	}
	if rep := fullAudit(t, s, store); !rep.Clean() {
		t.Fatalf("full audit dirty after delete: %s", rep)
	}
}

func TestReplacePreservesPlacement(t *testing.T) {
	s, store := newXMarkStore(t, workloads.XMarkConfig{ItemsPerContinent: 1, CategoriesPerItem: 1, NumCategories: 3, Seed: 3})
	a := newApplier(t, s, store)

	res, err := a.Apply(context.Background(), Batch{Muts: []Mutation{{
		Op: OpReplace, Path: "/Site/Regions/Africa/Item",
		XML: "<Item><name>replacement</name><InCategory><Category>swapped</Category></InCategory></Item>",
	}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !res.Audit.Clean() {
		t.Fatalf("post-apply audit dirty: %s", res.Audit)
	}
	itemT := store.Table("Item")
	ts := itemT.Schema()
	pci, ni := ts.ColumnIndex("parentcode"), ts.ColumnIndex("name")
	found := false
	for _, row := range itemT.Rows() {
		if row[ni].AsString() == "replacement" {
			found = true
			if row[pci].AsInt() != 1 {
				t.Fatalf("replacement parentcode = %v, want 1 (Africa)", row[pci])
			}
		}
	}
	if !found {
		t.Fatal("replacement item not found")
	}
	if rep := fullAudit(t, s, store); !rep.Clean() {
		t.Fatalf("full audit dirty after replace: %s", rep)
	}
}

func TestBatchRejectionIsAtomic(t *testing.T) {
	s, store := newXMarkStore(t, workloads.XMarkConfig{ItemsPerContinent: 2, CategoriesPerItem: 1, NumCategories: 4, Seed: 4})
	a := newApplier(t, s, store)
	pre := store.Dump()

	// Mutation 0 is valid; mutation 1 conflicts (items already have names).
	_, err := a.Apply(context.Background(), Batch{Muts: []Mutation{
		{Op: OpInsert, Path: "/Site/Regions/Asia/Item", XML: "<InCategory><Category>ok</Category></InCategory>"},
		{Op: OpInsert, Path: "//Item", XML: "<name>dup</name>"},
	}})
	var uerr *Error
	if !errors.As(err, &uerr) {
		t.Fatalf("err = %v, want *update.Error", err)
	}
	if uerr.Kind != ErrConflict || uerr.Index != 1 || uerr.Path != "//Item" {
		t.Fatalf("got kind=%v index=%d path=%q, want conflict/1///Item", uerr.Kind, uerr.Index, uerr.Path)
	}
	if store.Dump() != pre {
		t.Fatal("store changed although the batch was rejected")
	}
}

func TestSnapshotSemanticsInsertThenDelete(t *testing.T) {
	s, store := newXMarkStore(t, workloads.XMarkConfig{ItemsPerContinent: 1, CategoriesPerItem: 1, NumCategories: 3, Seed: 5})
	a := newApplier(t, s, store)

	// The delete sweeps the insert staged under the same items: net effect
	// is item removal, and the audit must accept the combined instance.
	res, err := a.Apply(context.Background(), Batch{Muts: []Mutation{
		{Op: OpInsert, Path: "//Item", XML: "<InCategory><Category>doomed</Category></InCategory>"},
		{Op: OpDelete, Path: "//Item"},
	}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := store.Table("Item").Len(); got != 0 {
		t.Fatalf("Item rows = %d, want 0", got)
	}
	if got := store.Table("InCat").Len(); got != 0 {
		t.Fatalf("InCat rows = %d, want 0", got)
	}
	if !res.Audit.Clean() {
		t.Fatalf("post-apply audit dirty: %s", res.Audit)
	}
}

func TestInsertUnderDeletedTargetConflicts(t *testing.T) {
	s, store := newXMarkStore(t, workloads.XMarkConfig{ItemsPerContinent: 1, CategoriesPerItem: 1, NumCategories: 3, Seed: 6})
	a := newApplier(t, s, store)
	pre := store.Dump()

	_, err := a.Apply(context.Background(), Batch{Muts: []Mutation{
		{Op: OpDelete, Path: "//Item"},
		{Op: OpInsert, Path: "//Item", XML: "<InCategory><Category>orphan</Category></InCategory>"},
	}})
	var uerr *Error
	if !errors.As(err, &uerr) || uerr.Kind != ErrConflict || uerr.Index != 1 {
		t.Fatalf("err = %v, want ErrConflict on mutation 1", err)
	}
	if store.Dump() != pre {
		t.Fatal("store changed although the batch was rejected")
	}
}

func TestTargetErrors(t *testing.T) {
	s, store := newXMarkStore(t, workloads.XMarkConfig{ItemsPerContinent: 1, CategoriesPerItem: 1, NumCategories: 3, Seed: 7})
	a := newApplier(t, s, store)
	cases := []struct {
		path string
		kind ErrorKind
	}{
		{"//Nope", ErrTarget},                     // matches no schema position
		{"//Item/InCategory/Category", ErrTarget}, // value leaf, no tuple
		{"//Item[", ErrPath},                      // unparsable
	}
	for _, c := range cases {
		_, err := a.Apply(context.Background(), Batch{Muts: []Mutation{{Op: OpDelete, Path: c.path}}})
		var uerr *Error
		if !errors.As(err, &uerr) || uerr.Kind != c.kind {
			t.Errorf("path %q: err = %v, want kind %v", c.path, err, c.kind)
		}
		if uerr != nil && uerr.Path != c.path {
			t.Errorf("path %q: error carries path %q", c.path, uerr.Path)
		}
	}
}

func TestNoMatchingTuplesIsNoop(t *testing.T) {
	s := workloads.XMark()
	store := relational.NewStore()
	doc := &xmltree.Document{Root: xmltree.NewElem("Site",
		xmltree.NewElem("Regions",
			xmltree.NewElem("Africa", xmltree.NewElem("Item", xmltree.NewText("name", "only")))))}
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	a := newApplier(t, s, store)
	pre := store.Dump()
	res, err := a.Apply(context.Background(), Batch{Muts: []Mutation{{
		Op: OpDelete, Path: "/Site/Regions/Asia/Item",
	}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !res.Touched.Empty() || res.Stmts != 0 {
		t.Fatalf("expected a no-op, got touched=%+v stmts=%d", res.Touched, res.Stmts)
	}
	if store.Dump() != pre {
		t.Fatal("store changed on no-op batch")
	}
}

func TestNonConformingSubtreeRejected(t *testing.T) {
	s, store := newXMarkStore(t, workloads.XMarkConfig{ItemsPerContinent: 1, CategoriesPerItem: 1, NumCategories: 3, Seed: 8})
	a := newApplier(t, s, store)
	pre := store.Dump()
	_, err := a.Apply(context.Background(), Batch{Muts: []Mutation{{
		Op: OpInsert, Path: "//Item", XML: "<Bogus>nope</Bogus>",
	}}})
	var uerr *Error
	if !errors.As(err, &uerr) || uerr.Kind != ErrConform {
		t.Fatalf("err = %v, want ErrConform", err)
	}
	if store.Dump() != pre {
		t.Fatal("store changed on rejected batch")
	}
}

// ambiguousSchema maps two same-labelled, identically-conditioned positions
// onto one relation: any <a> tuple aligns to both, breaking P1. Planning
// cannot see that (the subtree conforms, the conditions are consistent) —
// only the pre-apply audit catches it, exercising the integrity rejection.
func ambiguousSchema(t *testing.T) *schema.Schema {
	t.Helper()
	b := schema.NewBuilder("ambig")
	b.Node("1", "r", schema.Rel("R"))
	b.Node("2", "a", schema.Rel("A"))
	b.Node("3", "a", schema.Rel("A"))
	b.Root("1")
	b.EdgeCondInt("1", "2", "c", 1)
	b.EdgeCondInt("1", "3", "c", 1)
	s, err := b.Build()
	if err != nil {
		t.Skipf("builder rejects ambiguous mapping: %v", err)
	}
	return s
}

func TestIntegrityViolationRejectedAtomically(t *testing.T) {
	s := ambiguousSchema(t)
	store := relational.NewStore()
	doc := &xmltree.Document{Root: xmltree.NewElem("r")}
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	a := newApplier(t, s, store)
	pre := store.Dump()

	_, err := a.Apply(context.Background(), Batch{Muts: []Mutation{{
		Op: OpInsert, Path: "/r", XML: "<a/>",
	}}})
	var uerr *Error
	if !errors.As(err, &uerr) {
		t.Fatalf("err = %v, want *update.Error", err)
	}
	if uerr.Kind != ErrIntegrity {
		t.Fatalf("kind = %v, want ErrIntegrity", uerr.Kind)
	}
	if uerr.Path != "/r" || uerr.Report == nil || uerr.Report.Clean() {
		t.Fatalf("error must carry the violating path and the audit report: %+v", uerr)
	}
	if !strings.Contains(err.Error(), "/r") {
		t.Fatalf("rendered error %q does not name the path", err)
	}
	if store.Dump() != pre {
		t.Fatal("store changed although the batch was rejected")
	}
}

func TestPreexistingDirtDoesNotBlockValidBatch(t *testing.T) {
	s, store := newXMarkStore(t, workloads.XMarkConfig{ItemsPerContinent: 1, CategoriesPerItem: 1, NumCategories: 3, Seed: 9})
	// Dangle the Site root's parent link: a P2 violation on an ancestor of
	// the staged inserts — inside the batch's audit neighborhood, and
	// present both with and without the batch's effects.
	site := store.Table("Site")
	pi := site.Schema().ColumnIndex(schema.ParentIDColumn)
	if _, err := site.UpdateWhere(
		func(r relational.Row) bool { return true },
		func(r relational.Row) relational.Row { r[pi] = relational.Int(12345); return r },
	); err != nil {
		t.Fatalf("corrupting store: %v", err)
	}

	a := newApplier(t, s, store)
	res, err := a.Apply(context.Background(), Batch{Muts: []Mutation{{
		Op: OpInsert, Path: "/Site/Regions/Africa/Item",
		XML: "<InCategory><Category>fine</Category></InCategory>",
	}}})
	if err != nil {
		t.Fatalf("Apply: %v (pre-existing dirt must not block a valid batch)", err)
	}
	if res.Preexisting == nil || res.Preexisting.Clean() {
		t.Fatal("Result.Preexisting must report the pre-existing violations")
	}
}
