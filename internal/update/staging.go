package update

import (
	"context"
	"sort"

	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// staging accumulates a batch's planned effects: the DML statements to
// apply, plus a row-level image of those effects so the rest of the batch
// (and the pre-apply audit) can see them before anything is written.
type staging struct {
	a *Applier
	// rows holds the post-batch image of every inserted or rewritten tuple,
	// in TableSchema column order.
	rows map[string]map[int64]relational.Row
	// deleted marks tuples the batch removes.
	deleted map[string]map[int64]bool
	// fresh marks staged tuples that do not exist pre-batch (inserts, as
	// opposed to rewrites of existing tuples).
	fresh map[tupleKey]bool
	// byMut attributes each staged tuple to the mutation that staged it, so
	// integrity rejections can name the violating path.
	byMut map[tupleKey]int
	stmts []sqlast.DMLStmt
}

type tupleKey struct {
	rel string
	id  int64
}

func newStaging(a *Applier) *staging {
	return &staging{
		a:       a,
		rows:    map[string]map[int64]relational.Row{},
		deleted: map[string]map[int64]bool{},
		fresh:   map[tupleKey]bool{},
		byMut:   map[tupleKey]int{},
	}
}

// lookup returns the batch's view of one tuple: the staged image if the
// batch wrote it, nothing if the batch deleted it, otherwise the stored row.
func (st *staging) lookup(ctx context.Context, rel string, id int64) (relational.Row, bool, error) {
	if st.deleted[rel][id] {
		return nil, false, nil
	}
	if row, ok := st.rows[rel][id]; ok {
		return row, true, nil
	}
	rows, err := st.a.probe.FetchByID(ctx, rel, []int64{id})
	if err != nil || len(rows) == 0 {
		return nil, false, err
	}
	return rows[0], true, nil
}

// stageInsert records a fresh tuple.
func (st *staging) stageInsert(mut int, rel string, id int64, row relational.Row) {
	st.stage(mut, rel, id, row)
	st.fresh[tupleKey{rel, id}] = true
}

// stageRewrite records the new image of an existing tuple.
func (st *staging) stageRewrite(mut int, rel string, id int64, row relational.Row) {
	st.stage(mut, rel, id, row)
}

func (st *staging) stage(mut int, rel string, id int64, row relational.Row) {
	if st.rows[rel] == nil {
		st.rows[rel] = map[int64]relational.Row{}
	}
	st.rows[rel][id] = row
	st.byMut[tupleKey{rel, id}] = mut
}

// stageDelete records a removal. A tuple both staged and deleted (a batch
// inserting under an element a later mutation deletes) nets out to nothing.
func (st *staging) stageDelete(mut int, rel string, id int64) {
	if st.deleted[rel] == nil {
		st.deleted[rel] = map[int64]bool{}
	}
	st.deleted[rel][id] = true
	if st.rows[rel] != nil {
		delete(st.rows[rel], id)
	}
	st.byMut[tupleKey{rel, id}] = mut
}

func (st *staging) isDeleted(rel string, id int64) bool { return st.deleted[rel][id] }

// mutationFor returns the index of the mutation that staged a tuple, or -1.
func (st *staging) mutationFor(rel string, id int64) int {
	if i, ok := st.byMut[tupleKey{rel, id}]; ok {
		return i
	}
	return -1
}

// touched is the batch's footprint. A rewritten-then-deleted tuple counts
// only as deleted; fresh inserts that were deleted again are dropped by
// stageDelete and surface as Deleted refs (harmless: the audit probes find
// nothing live there, and invalidation keys on relations).
func (st *staging) touched() integrity.Touched {
	var t integrity.Touched
	for rel, rows := range st.rows {
		for id := range rows {
			t.Written = append(t.Written, integrity.TupleRef{Rel: rel, ID: id})
		}
	}
	for rel, ids := range st.deleted {
		for id := range ids {
			t.Deleted = append(t.Deleted, integrity.TupleRef{Rel: rel, ID: id})
		}
	}
	sortRefs(t.Written)
	sortRefs(t.Deleted)
	return t
}

// baseTouched anchors the same neighborhood in the *pre-batch* instance:
// deleted and rewritten tuples exist there as themselves, and fresh inserts
// are represented by their parent tuples (a fresh id resolves to nothing
// pre-batch, which would otherwise hide pre-existing dirt on its ancestors
// from the base audit that Apply uses to tell old dirt from new).
func (st *staging) baseTouched() integrity.Touched {
	var t integrity.Touched
	seen := map[tupleKey]bool{}
	add := func(refs *[]integrity.TupleRef, rel string, id int64) {
		k := tupleKey{rel, id}
		if !seen[k] {
			seen[k] = true
			*refs = append(*refs, integrity.TupleRef{Rel: rel, ID: id})
		}
	}
	for rel, rows := range st.rows {
		for id, row := range rows {
			if !st.fresh[tupleKey{rel, id}] {
				add(&t.Written, rel, id)
				continue
			}
			if pid, ok := parentID(row); ok {
				// The relation is only a label here; neighborhood probes
				// fetch every id in every relation regardless.
				add(&t.Written, rel, pid)
			}
		}
	}
	for rel, ids := range st.deleted {
		for id := range ids {
			add(&t.Deleted, rel, id)
		}
	}
	sortRefs(t.Written)
	sortRefs(t.Deleted)
	return t
}

func sortRefs(refs []integrity.TupleRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Rel != refs[j].Rel {
			return refs[i].Rel < refs[j].Rel
		}
		return refs[i].ID < refs[j].ID
	})
}

// appendStmt queues one DML statement, in plan order.
func (st *staging) appendStmt(s sqlast.DMLStmt) { st.stmts = append(st.stmts, s) }

func (st *staging) statements() []sqlast.DMLStmt { return st.stmts }

// overlayProbe is the pre-apply view: the base instance with the batch's
// staged effects layered on. The incremental audit runs over it, so a batch
// is judged on the instance it *would* produce — which is what lets invalid
// batches be rejected before any backend write, even on backends that
// cannot roll back after commit.
type overlayProbe struct {
	base integrity.Probe
	st   *staging
}

func (p *overlayProbe) FetchByID(ctx context.Context, rel string, ids []int64) ([]relational.Row, error) {
	base, err := p.base.FetchByID(ctx, rel, ids)
	if err != nil {
		return nil, err
	}
	staged := p.st.rows[rel]
	var out []relational.Row
	emitted := map[int64]bool{}
	for _, row := range base {
		if len(row) == 0 || row[0].IsNull() || row[0].Kind() != relational.KindInt {
			out = append(out, row)
			continue
		}
		id := row[0].AsInt()
		if p.st.isDeleted(rel, id) {
			continue
		}
		if sr, ok := staged[id]; ok {
			out = append(out, sr)
			emitted[id] = true
			continue
		}
		out = append(out, row)
	}
	for _, id := range ids {
		if sr, ok := staged[id]; ok && !emitted[id] && !p.st.isDeleted(rel, id) {
			out = append(out, sr)
			emitted[id] = true
		}
	}
	return out, nil
}

func (p *overlayProbe) FetchByParent(ctx context.Context, rel string, parents []int64) ([]relational.Row, error) {
	base, err := p.base.FetchByParent(ctx, rel, parents)
	if err != nil {
		return nil, err
	}
	staged := p.st.rows[rel]
	want := make(map[int64]bool, len(parents))
	for _, par := range parents {
		want[par] = true
	}
	var out []relational.Row
	for _, row := range base {
		if len(row) > 0 && !row[0].IsNull() && row[0].Kind() == relational.KindInt {
			id := row[0].AsInt()
			if p.st.isDeleted(rel, id) {
				continue
			}
			if _, ok := staged[id]; ok {
				// The staged image may have moved or rewritten the tuple;
				// it is emitted below iff its new parent still matches.
				continue
			}
		}
		out = append(out, row)
	}
	ids := make([]int64, 0, len(staged))
	for id := range staged {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		row := staged[id]
		if len(row) > 1 && !row[1].IsNull() && row[1].Kind() == relational.KindInt && want[row[1].AsInt()] {
			out = append(out, row)
		}
	}
	return out, nil
}

var _ integrity.Probe = (*overlayProbe)(nil)

// rowValue reads one named column from a TableSchema-ordered row.
func rowValue(ts *relational.TableSchema, row relational.Row, col string) relational.Value {
	i := ts.ColumnIndex(col)
	if i < 0 || i >= len(row) {
		return relational.Null
	}
	return row[i]
}

// parentID extracts a row's parent id, if it is a usable integer.
func parentID(row relational.Row) (int64, bool) {
	if len(row) > 1 && !row[1].IsNull() && row[1].Kind() == relational.KindInt {
		return row[1].AsInt(), true
	}
	return 0, false
}
