package update

import (
	"context"
	"fmt"
	"sort"

	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
)

// target is one resolved schema position a mutation addresses, with the ids
// of the tuples sitting there in the pre-batch instance.
type target struct {
	sid schema.NodeID
	rel string
	ids []int64
}

// resolve turns a mutation's path expression into concrete target tuples,
// using the same translation pipeline queries use: build the path/schema
// cross product, enumerate its root-to-accepting paths, translate each to
// SQL(p) and run it. Relation-annotated accepting nodes project the tuple
// id, so the query results *are* the target ids.
//
// Resolution always runs against the pre-batch instance (the Source sees no
// staged effects), giving batches snapshot semantics.
func (a *Applier) resolve(ctx context.Context, idx int, m Mutation) ([]target, error) {
	p, err := pathexpr.Parse(m.Path)
	if err != nil {
		return nil, &Error{Kind: ErrPath, Index: idx, Path: m.Path, Msg: err.Error()}
	}
	g, err := pathid.Build(a.s, p)
	if err != nil {
		return nil, &Error{Kind: ErrPath, Index: idx, Path: m.Path, Msg: err.Error()}
	}
	if g.Empty() {
		return nil, &Error{Kind: ErrTarget, Index: idx, Path: m.Path,
			Msg: "path matches no position of schema " + a.s.Name}
	}
	paths, complete := g.EnumeratePaths(translate.MaxEnumeratedPaths, 1)
	if !complete {
		return nil, &Error{Kind: ErrPath, Index: idx, Path: m.Path,
			Msg: "path reaches its targets through recursion or too many routes; updates need an enumerable target set"}
	}

	bySchema := map[schema.NodeID][][]int{}
	for _, nodes := range paths {
		last := nodes[len(nodes)-1]
		sid := g.Node(last).Schema
		bySchema[sid] = append(bySchema[sid], nodes)
	}
	sids := make([]schema.NodeID, 0, len(bySchema))
	for sid := range bySchema {
		sids = append(sids, sid)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })

	anchored := translate.NeedsAnchor(a.s)
	var out []target
	for _, sid := range sids {
		sn := a.s.Node(sid)
		if !sn.HasRelation() {
			return nil, &Error{Kind: ErrTarget, Index: idx, Path: m.Path,
				Msg: fmt.Sprintf("path ends at %s, which produces no tuple; address the enclosing tuple-producing element instead", sn.Name)}
		}
		ids := map[int64]bool{}
		for _, nodes := range bySchema[sid] {
			sel, err := translate.BuildPathSelect(g, translate.PathSpec{Nodes: nodes, Anchored: anchored})
			if err != nil {
				return nil, &Error{Kind: ErrPath, Index: idx, Path: m.Path, Msg: err.Error()}
			}
			res, err := a.src.Execute(ctx, sqlast.SingleSelect(sel))
			if err != nil {
				return nil, fmt.Errorf("update: resolving %s: %w", m.Path, err)
			}
			for _, row := range res.Rows {
				if len(row) > 0 && !row[0].IsNull() && row[0].Kind() == relational.KindInt {
					ids[row[0].AsInt()] = true
				}
			}
		}
		t := target{sid: sid, rel: sn.Relation}
		for id := range ids {
			t.ids = append(t.ids, id)
		}
		sort.Slice(t.ids, func(i, j int) bool { return t.ids[i] < t.ids[j] })
		out = append(out, t)
	}
	return out, nil
}
