package docgen_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"xmlsql/internal/core"
	"xmlsql/internal/docgen"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
	"xmlsql/internal/translate"
)

// TestStressEquivalence is the long-haul hunt: enable by setting
// XMLSQL_STRESS to the number of seeds per configuration.
func TestStressEquivalence(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("XMLSQL_STRESS"))
	if n <= 0 {
		t.Skip("set XMLSQL_STRESS=<seeds> to run")
	}
	cfgs := []docgen.Config{docgen.DefaultConfig(), recursiveConfig()}
	for ci, cfg := range cfgs {
		for seed := int64(1000); seed < int64(1000+n); seed++ {
			g := docgen.New(seed, cfg)
			s := g.Schema()
			doc := g.Document(s)
			store := relational.NewStore()
			results, err := shred.ShredAll(s, store, shred.Options{}, doc)
			if err != nil {
				t.Fatalf("cfg %d seed %d: shred: %v\n%s", ci, seed, err, s)
			}
			if _, err := shred.Reconstruct(s, store); err != nil {
				t.Fatalf("cfg %d seed %d: reconstruct: %v\n%s", ci, seed, err, s)
			}
			for qi := 0; qi < 6; qi++ {
				query := g.Query(s)
				if qi%2 == 1 {
					query = g.PredQuery(s)
				}
				q, err := pathexpr.Parse(query)
				if err != nil {
					t.Fatalf("cfg %d seed %d: parse %q: %v", ci, seed, query, err)
				}
				cp, err := pathid.Build(s, q)
				if err != nil {
					if q.HasPreds() {
						continue
					}
					t.Fatalf("cfg %d seed %d: pathid(%s): %v\n%s", ci, seed, query, err, s)
				}
				naive, err := translate.Naive(cp)
				if err != nil {
					t.Fatalf("cfg %d seed %d: naive(%s): %v\n%s", ci, seed, query, err, s)
				}
				pruned, err := core.Translate(cp)
				if err != nil {
					t.Fatalf("cfg %d seed %d: pruned(%s): %v\n%s", ci, seed, query, err, s)
				}
				nres, err := engine.Execute(store, naive)
				if err != nil {
					t.Fatalf("cfg %d seed %d: exec naive(%s): %v\n%s", ci, seed, query, err, naive.SQL())
				}
				pres, err := engine.Execute(store, pruned.Query)
				if err != nil {
					t.Fatalf("cfg %d seed %d: exec pruned(%s): %v\n%s", ci, seed, query, err, pruned.Query.SQL())
				}
				if !nres.MultisetEqual(pres) {
					t.Fatalf("cfg %d seed %d: %s disagree (fallback=%v)\nschema:\n%s\nnaive:\n%s\npruned:\n%s\ndiff:\n%s",
						ci, seed, query, pruned.Fallback, s, naive.SQL(), pruned.Query.SQL(), nres.MultisetDiff(pres))
				}
				wantVals, err := shred.EvalReferenceAll(results, q)
				if err != nil {
					t.Fatalf("cfg %d seed %d: reference(%s): %v", ci, seed, query, err)
				}
				want := &engine.Result{}
				for _, v := range wantVals {
					want.Rows = append(want.Rows, relational.Row{v})
				}
				if !pres.MultisetEqual(want) {
					t.Fatalf("cfg %d seed %d: %s vs reference (fallback=%v)\nschema:\n%s\npruned:\n%s\ndiff:\n%s",
						ci, seed, query, pruned.Fallback, s, pruned.Query.SQL(), pres.MultisetDiff(want))
				}
			}
		}
		fmt.Printf("stress cfg %d: %d seeds x 6 queries clean\n", ci, n)
	}
}
