package docgen_test

import (
	"fmt"
	"testing"

	"xmlsql/internal/core"
	"xmlsql/internal/docgen"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/translate"
)

// The pipeline property tests: for randomly generated mappings, documents,
// and queries, the shred/reconstruct round trip must be the identity (up to
// canonical sibling order), the lossless checker must accept, and the naive
// and pruned translations must both agree with the reference XML
// evaluation. These are the paper's correctness claims, exercised across a
// schema space far wider than the worked figures.

const propRounds = 60

func TestPropertyShredRoundTrip(t *testing.T) {
	for seed := int64(0); seed < propRounds; seed++ {
		g := docgen.New(seed, docgen.DefaultConfig())
		s := g.Schema()
		doc := g.Document(s)
		store := relational.NewStore()
		if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
			t.Fatalf("seed %d: shred: %v\nschema:\n%s", seed, err, s)
		}
		docs, err := shred.Reconstruct(s, store)
		if err != nil {
			t.Fatalf("seed %d: reconstruct: %v\nschema:\n%s", seed, err, s)
		}
		if len(docs) != 1 || !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
			t.Fatalf("seed %d: round trip mismatch\nschema:\n%s\noriginal:\n%s\nreconstructed:\n%s",
				seed, s, doc.Canonicalize(), docs[0].Canonicalize())
		}
		if err := shred.CheckLossless(s, store); err != nil {
			t.Fatalf("seed %d: lossless check: %v", seed, err)
		}
	}
}

func TestPropertyTranslationEquivalence(t *testing.T) {
	queriesPerSchema := 5
	for seed := int64(0); seed < propRounds; seed++ {
		g := docgen.New(seed, docgen.DefaultConfig())
		s := g.Schema()
		doc := g.Document(s)
		store := relational.NewStore()
		results, err := shred.ShredAll(s, store, shred.Options{}, doc)
		if err != nil {
			t.Fatalf("seed %d: shred: %v", seed, err)
		}
		for qi := 0; qi < queriesPerSchema; qi++ {
			query := g.Query(s)
			if qi >= queriesPerSchema/2 {
				query = g.PredQuery(s)
			}
			t.Run(fmt.Sprintf("seed%d/%s", seed, query), func(t *testing.T) {
				q, err := pathexpr.Parse(query)
				if err != nil {
					t.Fatalf("generated invalid query %q: %v", query, err)
				}
				cp, err := pathid.Build(s, q)
				if err != nil {
					if q.HasPreds() {
						// Predicates the translation fragment excludes
						// (children in their own relations etc.) are
						// rejected cleanly; that is correct behaviour.
						t.Skipf("predicate query rejected: %v", err)
					}
					t.Fatalf("pathid: %v\nschema:\n%s", err, s)
				}
				naive, err := translate.Naive(cp)
				if err != nil {
					t.Fatalf("naive: %v\nschema:\n%s", err, s)
				}
				pruned, err := core.Translate(cp)
				if err != nil {
					t.Fatalf("pruned: %v\nschema:\n%s", err, s)
				}
				nres, err := engine.Execute(store, naive)
				if err != nil {
					t.Fatalf("naive exec: %v\nSQL:\n%s", err, naive.SQL())
				}
				pres, err := engine.Execute(store, pruned.Query)
				if err != nil {
					t.Fatalf("pruned exec: %v\nSQL:\n%s", err, pruned.Query.SQL())
				}
				if !nres.MultisetEqual(pres) {
					t.Fatalf("naive and pruned disagree (fallback=%v):\n%s\nschema:\n%s\nnaive:\n%s\npruned:\n%s",
						pruned.Fallback, nres.MultisetDiff(pres), s, naive.SQL(), pruned.Query.SQL())
				}
				wantVals, err := shred.EvalReferenceAll(results, q)
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				want := &engine.Result{}
				for _, v := range wantVals {
					want.Rows = append(want.Rows, relational.Row{v})
				}
				if !pres.MultisetEqual(want) {
					t.Fatalf("pruned differs from reference:\n%s\nschema:\n%s\npruned:\n%s",
						pres.MultisetDiff(want), s, pruned.Query.SQL())
				}
			})
		}
	}
}

// recursiveConfig turns on back-edges so the generated schemas exercise the
// DAG/recursive pruning path (§5) rather than only the tree case.
func recursiveConfig() docgen.Config {
	cfg := docgen.DefaultConfig()
	cfg.BackEdges = 3
	cfg.MaxRecursionDepth = 10
	return cfg
}

func TestPropertyRecursiveSchemas(t *testing.T) {
	recursiveSeen := 0
	for seed := int64(100); seed < 100+propRounds; seed++ {
		g := docgen.New(seed, recursiveConfig())
		s := g.Schema()
		if s.Classify() != schema.ShapeTree {
			recursiveSeen++
		}
		doc := g.Document(s)
		store := relational.NewStore()
		results, err := shred.ShredAll(s, store, shred.Options{}, doc)
		if err != nil {
			t.Fatalf("seed %d: shred: %v\nschema:\n%s", seed, err, s)
		}
		docs, err := shred.Reconstruct(s, store)
		if err != nil {
			t.Fatalf("seed %d: reconstruct: %v\nschema:\n%s", seed, err, s)
		}
		if len(docs) != 1 || !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
			t.Fatalf("seed %d: round trip mismatch\nschema:\n%s", seed, s)
		}
		for qi := 0; qi < 4; qi++ {
			query := g.Query(s)
			q, err := pathexpr.Parse(query)
			if err != nil {
				t.Fatalf("seed %d: bad query %q: %v", seed, query, err)
			}
			cp, err := pathid.Build(s, q)
			if err != nil {
				t.Fatalf("seed %d: pathid(%s): %v\nschema:\n%s", seed, query, err, s)
			}
			naive, err := translate.Naive(cp)
			if err != nil {
				t.Fatalf("seed %d: naive(%s): %v\nschema:\n%s", seed, query, err, s)
			}
			pruned, err := core.Translate(cp)
			if err != nil {
				t.Fatalf("seed %d: pruned(%s): %v\nschema:\n%s", seed, query, err, s)
			}
			nres, err := engine.Execute(store, naive)
			if err != nil {
				t.Fatalf("seed %d: naive exec(%s): %v\n%s", seed, query, err, naive.SQL())
			}
			pres, err := engine.Execute(store, pruned.Query)
			if err != nil {
				t.Fatalf("seed %d: pruned exec(%s): %v\n%s", seed, query, err, pruned.Query.SQL())
			}
			if !nres.MultisetEqual(pres) {
				t.Fatalf("seed %d: %s: naive and pruned disagree (fallback=%v):\n%s\nschema:\n%s\nnaive:\n%s\npruned:\n%s",
					seed, query, pruned.Fallback, nres.MultisetDiff(pres), s, naive.SQL(), pruned.Query.SQL())
			}
			wantVals, err := shred.EvalReferenceAll(results, q)
			if err != nil {
				t.Fatalf("seed %d: reference(%s): %v", seed, query, err)
			}
			want := &engine.Result{}
			for _, v := range wantVals {
				want.Rows = append(want.Rows, relational.Row{v})
			}
			if !pres.MultisetEqual(want) {
				t.Fatalf("seed %d: %s: pruned differs from reference (fallback=%v):\n%s\nschema:\n%s\npruned:\n%s",
					seed, query, pruned.Fallback, pres.MultisetDiff(want), s, pruned.Query.SQL())
			}
		}
	}
	if recursiveSeen < propRounds/4 {
		t.Errorf("only %d of %d schemas were non-tree; back-edge generation too weak", recursiveSeen, propRounds)
	}
}

func TestPropertySchemaDSLRoundTrip(t *testing.T) {
	for seed := int64(0); seed < propRounds; seed++ {
		g := docgen.New(seed, docgen.DefaultConfig())
		s := g.Schema()
		reparsed, err := schema.Parse(s.String())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, s)
		}
		if reparsed.String() != s.String() {
			t.Fatalf("seed %d: DSL round trip mismatch:\n%s\nvs\n%s", seed, s, reparsed)
		}
	}
}
