// Package docgen generates random — but valid — XML-to-Relational mappings,
// conforming documents, and path expression queries for property-based
// testing. Generated mappings are always losslessly shreddable: sibling
// chains that target the same relation receive distinguishing edge
// conditions, value leaves occur exactly once, and structural (unannotated)
// nodes occur exactly once per parent.
package docgen

import (
	"fmt"
	"math/rand"
	"strings"

	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

// Config bounds random schema generation.
type Config struct {
	// MaxDepth bounds the schema tree depth.
	MaxDepth int
	// MaxChildren bounds the fan-out per node.
	MaxChildren int
	// Labels is the pool of element tags for annotated nodes; reuse across
	// nodes is what makes // queries interesting.
	Labels []string
	// RelationReuse is the probability that a new annotated node reuses an
	// existing relation.
	RelationReuse float64
	// StructuralProb is the probability that an internal node is
	// unannotated (structural).
	StructuralProb float64
	// BackEdges is the number of recursive back-edges to attempt to add
	// (from an annotated node to an annotated non-root node elsewhere in the
	// tree), turning the schema into a DAG or recursive graph. Attempts that
	// would make alignment or reconstruction ambiguous are skipped.
	BackEdges int
	// MaxRecursionDepth bounds document recursion through back-edges.
	MaxRecursionDepth int
}

// DefaultConfig returns moderate generation bounds.
func DefaultConfig() Config {
	return Config{
		MaxDepth:       4,
		MaxChildren:    3,
		Labels:         []string{"a", "b", "c", "d", "e"},
		RelationReuse:  0.5,
		StructuralProb: 0.25,
	}
}

// Generator produces random schemas, documents, and queries from one seed.
type Generator struct {
	rng *rand.Rand
	cfg Config
}

// New creates a generator.
func New(seed int64, cfg Config) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

type genNode struct {
	name       string
	label      string
	relation   string // "" for structural
	column     string
	children   []*genNode
	backEdges  []*genNode       // recursive edges added post hoc
	edgeCond   *schema.EdgeCond // condition on the edge into this node
	structural bool
}

// Schema generates a random valid tree mapping.
func (g *Generator) Schema() *schema.Schema {
	counter := 0
	var relations []string
	newName := func() string {
		counter++
		return fmt.Sprintf("n%d", counter)
	}
	pickRelation := func() string {
		if len(relations) > 0 && g.rng.Float64() < g.cfg.RelationReuse {
			return relations[g.rng.Intn(len(relations))]
		}
		r := fmt.Sprintf("R%d", len(relations)+1)
		relations = append(relations, r)
		return r
	}
	// pickLabel draws a label the parent has not used yet: document
	// alignment is label-driven, so sibling elements with equal labels would
	// be indistinguishable (and the shredding ambiguous).
	pickLabel := func(used map[string]bool, structural bool) (string, bool) {
		var pool []string
		for _, l := range g.cfg.Labels {
			if structural {
				l = "s" + l // disjoint label space for unannotated nodes
			}
			if !used[l] {
				pool = append(pool, l)
			}
		}
		if len(pool) == 0 {
			return "", false
		}
		l := pool[g.rng.Intn(len(pool))]
		used[l] = true
		return l, true
	}

	var build func(depth int, mustAnnotate bool, siblingLabels map[string]bool) *genNode
	build = func(depth int, mustAnnotate bool, siblingLabels map[string]bool) *genNode {
		n := &genNode{name: newName()}
		leaf := depth >= g.cfg.MaxDepth || (depth > 0 && g.rng.Float64() < 0.3)
		structural := !leaf && !mustAnnotate && g.rng.Float64() < g.cfg.StructuralProb
		label, ok := pickLabel(siblingLabels, structural)
		if !ok {
			return nil // label pool for this parent exhausted
		}
		n.label = label
		switch {
		case leaf && !mustAnnotate && g.rng.Float64() < 0.6:
			// Column-only value leaf.
			n.column = "val"
		case leaf:
			// Annotated leaf with its own tuple and value column.
			n.relation = pickRelation()
			n.column = "val"
		default:
			if structural {
				n.structural = true
			} else {
				n.relation = pickRelation()
			}
			kids := 1 + g.rng.Intn(g.cfg.MaxChildren)
			childLabels := map[string]bool{}
			for i := 0; i < kids; i++ {
				// A structural node must not chain to another structural
				// node forever; force annotation below depth.
				child := build(depth+1, structural && i == 0, childLabels)
				if child != nil {
					n.children = append(n.children, child)
				}
			}
			if len(n.children) == 0 {
				// Degenerate: make it a value leaf instead.
				n.structural = false
				if n.relation == "" {
					n.relation = pickRelation()
				}
				n.column = "val"
			}
		}
		return n
	}
	root := build(0, true, map[string]bool{})
	root.column = "" // keep the root a pure container

	assignValueColumns(root)
	g.disambiguate(root)

	b := schema.NewBuilder(fmt.Sprintf("rand%d", g.rng.Int31()))
	var declare func(n *genNode)
	declare = func(n *genNode) {
		var opts []schema.NodeOpt
		if n.relation != "" {
			opts = append(opts, schema.Rel(n.relation))
		}
		if n.column != "" {
			opts = append(opts, schema.Col(n.column))
		}
		b.Node(n.name, n.label, opts...)
		for _, c := range n.children {
			declare(c)
		}
	}
	declare(root)
	b.Root(root.name)
	var connect func(n *genNode)
	connect = func(n *genNode) {
		for _, c := range n.children {
			if c.edgeCond != nil {
				b.EdgeCondInt(n.name, c.name, c.edgeCond.Column, c.edgeCond.Value.AsInt())
			} else {
				b.Edge(n.name, c.name)
			}
			connect(c)
		}
	}
	connect(root)
	g.addBackEdges(b, root)
	return b.MustBuild()
}

// addBackEdges attempts cfg.BackEdges recursive edges from annotated nodes
// to annotated non-root nodes, skipping any that would break alignment
// determinism (a source child with the target's label) or reconstruction
// unambiguity (a source chain already targeting the target's relation).
func (g *Generator) addBackEdges(b *schema.Builder, root *genNode) {
	var all []*genNode
	var collect func(n *genNode)
	collect = func(n *genNode) {
		all = append(all, n)
		for _, c := range n.children {
			collect(c)
		}
	}
	collect(root)

	childLabels := func(n *genNode) map[string]bool {
		out := map[string]bool{}
		var walk func(m *genNode)
		walk = func(m *genNode) {
			for _, c := range m.children {
				out[c.label] = true
				if c.structural {
					walk(c)
				}
			}
		}
		walk(n)
		for _, t := range n.backEdges {
			out[t.label] = true
		}
		return out
	}
	chainRelations := func(n *genNode) map[string]bool {
		out := map[string]bool{}
		var walk func(m *genNode)
		walk = func(m *genNode) {
			for _, c := range m.children {
				if c.relation != "" {
					out[c.relation] = true
				} else if c.structural {
					walk(c)
				}
			}
		}
		walk(n)
		for _, t := range n.backEdges {
			out[t.relation] = true
		}
		return out
	}

	added := map[[2]string]bool{}
	for attempt := 0; attempt < g.cfg.BackEdges; attempt++ {
		src := all[g.rng.Intn(len(all))]
		dst := all[g.rng.Intn(len(all))]
		if src.relation == "" || dst.relation == "" || dst == root || src == dst {
			continue
		}
		if added[[2]string{src.name, dst.name}] {
			continue
		}
		// A direct child of src with dst's label would make alignment
		// ambiguous; a chain of src targeting dst's relation would make
		// reconstruction ambiguous (no distinguishing condition).
		if childLabels(src)[dst.label] || chainRelations(src)[dst.relation] {
			continue
		}
		b.Edge(src.name, dst.name)
		src.backEdges = append(src.backEdges, dst)
		added[[2]string{src.name, dst.name}] = true
	}
}

// assignValueColumns renames column-only value leaves so no owner tuple
// receives two values into the same column (the shredder rejects that):
// the first leaf of each owner keeps "val" — preserving cross-owner sharing,
// the interesting case for pruning — and later ones get "val2", "val3", ….
func assignValueColumns(owner *genNode) {
	count := 0
	var walk func(n *genNode)
	walk = func(n *genNode) {
		for _, c := range n.children {
			if c.relation == "" && c.column != "" {
				count++
				if count > 1 {
					c.column = fmt.Sprintf("val%d", count)
				}
				continue
			}
			if c.relation != "" {
				assignValueColumns(c)
				continue
			}
			walk(c) // structural: same owner
		}
	}
	walk(owner)
}

// disambiguate assigns distinguishing pc conditions to sibling chains of one
// owner that target the same relation, keeping the mapping losslessly
// reconstructible.
func (g *Generator) disambiguate(owner *genNode) {
	// Collect chains: next annotated descendants through structural nodes.
	var targets []*genNode
	var collect func(n *genNode)
	collect = func(n *genNode) {
		for _, c := range n.children {
			if c.relation != "" {
				targets = append(targets, c)
			} else if c.structural {
				collect(c)
			}
		}
	}
	collect(owner)
	byRel := map[string][]*genNode{}
	for _, t := range targets {
		byRel[t.relation] = append(byRel[t.relation], t)
	}
	for _, group := range byRel {
		if len(group) < 2 {
			continue
		}
		for i, t := range group {
			t.edgeCond = &schema.EdgeCond{Column: "pc", Value: relational.Int(int64(i + 1))}
		}
	}
	// Recurse into every annotated descendant (they own the next level).
	var recurse func(n *genNode)
	recurse = func(n *genNode) {
		for _, c := range n.children {
			if c.relation != "" && len(c.children) > 0 {
				g.disambiguate(c)
			}
			recurse(c)
		}
	}
	recurse(owner)
}

// Document generates a random document conforming to the schema: structural
// nodes and value leaves exactly once, annotated children 0..3 times, and
// recursion through back-edges bounded by MaxRecursionDepth.
func (g *Generator) Document(s *schema.Schema) *xmltree.Document {
	valCounter := 0
	maxDepth := g.cfg.MaxRecursionDepth
	if maxDepth <= 0 {
		maxDepth = 3 * (g.cfg.MaxDepth + 1)
	}
	var emit func(id schema.NodeID, depth int) *xmltree.Node
	emit = func(id schema.NodeID, depth int) *xmltree.Node {
		n := s.Node(id)
		elem := &xmltree.Node{Label: n.Label}
		if n.Column != "" && n.Column != schema.IDColumn {
			valCounter++
			elem.Text = fmt.Sprintf("v%d", valCounter)
		}
		for _, e := range n.Children() {
			child := s.Node(e.To)
			reps := 1
			if child.HasRelation() {
				reps = g.rng.Intn(4) // 0..3 occurrences
			}
			if depth >= maxDepth && child.HasRelation() {
				reps = 0 // cut recursion
			}
			for i := 0; i < reps; i++ {
				elem.Children = append(elem.Children, emit(e.To, depth+1))
			}
		}
		return elem
	}
	return &xmltree.Document{Root: emit(s.Root(), 0)}
}

// PredQuery generates a random path expression like Query but attaches, when
// possible, a step predicate "[child='value']" to one step whose schema node
// is relation-annotated with a column-only child of that label. The value is
// drawn from the generator's document value space, so predicates sometimes
// select rows and sometimes select nothing — both interesting. Queries the
// translator rejects (predicate children stored in their own relations,
// root-step predicates) can still be produced; callers skip those.
func (g *Generator) PredQuery(s *schema.Schema) string {
	q := g.Query(s)
	// Collect candidate (label, childLabel) pairs.
	type cand struct{ label, child string }
	var cands []cand
	for _, n := range s.Nodes() {
		if !n.HasRelation() || n.ID == s.Root() {
			continue
		}
		for _, e := range n.Children() {
			c := s.Node(e.To)
			if !c.HasRelation() && c.Column != "" && c.Column != schema.IDColumn {
				cands = append(cands, cand{label: n.Label, child: c.Label})
			}
		}
	}
	if len(cands) == 0 {
		return q
	}
	pick := cands[g.rng.Intn(len(cands))]
	// Attach the predicate to the first occurrence of the label in the
	// query text, if any.
	needle := "/" + pick.label
	idx := strings.Index(q, needle)
	if idx < 0 {
		return q
	}
	end := idx + len(needle)
	// Only attach at a step boundary (end of string or before '/').
	if end != len(q) && q[end] != '/' {
		return q
	}
	val := fmt.Sprintf("v%d", 1+g.rng.Intn(40))
	return q[:end] + "[" + pick.child + "='" + val + "']" + q[end:]
}

// Query generates a random path expression ending at a value-bearing node
// of the schema (annotated or column-only), mixing / and // steps.
func (g *Generator) Query(s *schema.Schema) string {
	// Candidate targets: nodes with a retrievable value whose label is not
	// structural.
	var candidates []schema.NodeID
	for _, n := range s.Nodes() {
		if _, _, err := s.Annot(n.ID); err == nil && !strings.HasPrefix(n.Label, "s") {
			candidates = append(candidates, n.ID)
		}
	}
	if len(candidates) == 0 {
		return "/" + s.RootNode().Label
	}
	target := candidates[g.rng.Intn(len(candidates))]

	// The unique root path in a tree schema.
	var path []schema.NodeID
	cur := target
	for {
		path = append([]schema.NodeID{cur}, path...)
		parents := s.Node(cur).Parents()
		if len(parents) == 0 {
			break
		}
		cur = parents[0].From
	}

	// Keep a random subsequence of steps (always the last), collapsing
	// dropped steps into //. Structural labels are skippable only.
	var sb strings.Builder
	prevKept := -1
	for i, id := range path {
		last := i == len(path)-1
		keep := last || (g.rng.Float64() < 0.6 && !strings.HasPrefix(s.Node(id).Label, "s"))
		if !keep {
			continue
		}
		if prevKept == i-1 {
			sb.WriteString("/")
		} else {
			sb.WriteString("//")
		}
		sb.WriteString(s.Node(id).Label)
		prevKept = i
	}
	return sb.String()
}
