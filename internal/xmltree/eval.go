package xmltree

import "xmlsql/internal/pathexpr"

// MatchNodes returns, in document order, every element whose root-to-element
// label path (and step predicates, if any) matches the path expression. This
// is the reference semantics of SPE evaluation (§3.3, extended with the §6
// predicate queries); value extraction (text vs. elemid) is layered on top
// by callers who know the schema annotations.
func MatchNodes(d *Document, p *pathexpr.Path) []*Node {
	dfa := pathexpr.BuildPredDFA(p)
	var out []*Node
	var rec func(n *Node, state int)
	rec = func(n *Node, state int) {
		next := dfa.Step(state, n.Label, SatisfiesPred(n, p.PredForLabel(n.Label)))
		if dfa.Accepting(next) {
			out = append(out, n)
		}
		for _, c := range n.Children {
			rec(c, next)
		}
	}
	rec(d.Root, dfa.Start())
	return out
}

// SatisfiesPred reports whether the element satisfies a step predicate: it
// has a child with the predicate's label whose text equals the value. A nil
// predicate is trivially satisfied.
func SatisfiesPred(n *Node, pred *pathexpr.Pred) bool {
	if pred == nil {
		return true
	}
	for _, c := range n.Children {
		if c.Label == pred.Child && c.Text == pred.Value {
			return true
		}
	}
	return false
}

// MatchNodesNFA is the slow reference implementation used to cross-check the
// DFA in property tests: it re-runs the NFA matcher on every root-to-node
// element sequence.
func MatchNodesNFA(d *Document, p *pathexpr.Path) []*Node {
	var out []*Node
	var chain []*Node
	var rec func(n *Node)
	rec = func(n *Node) {
		chain = append(chain, n)
		labels := make([]string, len(chain))
		for i, e := range chain {
			labels[i] = e.Label
		}
		if p.MatchesPred(labels, func(level int) bool {
			return SatisfiesPred(chain[level], p.PredForLabel(chain[level].Label))
		}) {
			out = append(out, n)
		}
		for _, c := range n.Children {
			rec(c)
		}
		chain = chain[:len(chain)-1]
	}
	rec(d.Root)
	return out
}
