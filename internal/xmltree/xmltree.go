// Package xmltree models XML documents as ordered labelled trees, parses and
// serializes them, validates them against schema graphs, and evaluates path
// expressions directly over documents. The direct evaluator is the ground
// truth every SQL translation is checked against.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is an XML element. Text-only content is stored in Text; element
// children in Children. (Mixed content is not needed for the paper's data
// model: value-bearing elements are leaves.)
type Node struct {
	Label    string
	Text     string
	Children []*Node
}

// Document is a parsed XML document with a single root element.
type Document struct {
	Root *Node
}

// NewElem builds an element with children.
func NewElem(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// NewText builds a leaf element holding a text value.
func NewText(label, text string) *Node {
	return &Node{Label: label, Text: text}
}

// Parse reads an XML document.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Label: t.Name.Local}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := strings.TrimSpace(string(t))
			if text == "" {
				continue
			}
			top := stack[len(stack)-1]
			top.Text += text
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unterminated document")
	}
	return &Document{Root: root}, nil
}

// ParseString parses a document from a string.
func ParseString(s string) (*Document, error) { return Parse(strings.NewReader(s)) }

// Serialize writes the document as XML text.
func (d *Document) Serialize(w io.Writer) error {
	return writeNode(w, d.Root, 0)
}

// String renders the document as indented XML.
func (d *Document) String() string {
	var b strings.Builder
	if err := d.Serialize(&b); err != nil {
		return "<serialization error: " + err.Error() + ">"
	}
	return b.String()
}

func writeNode(w io.Writer, n *Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	if len(n.Children) == 0 {
		var err error
		if n.Text == "" {
			_, err = fmt.Fprintf(w, "%s<%s/>\n", indent, n.Label)
		} else {
			_, err = fmt.Fprintf(w, "%s<%s>%s</%s>\n", indent, n.Label, escape(n.Text), n.Label)
		}
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s>\n", indent, n.Label); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Label)
	return err
}

func escape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

// Walk visits every node of the document in pre-order (document order).
// The callback receives the node and the root-to-node label path.
func (d *Document) Walk(fn func(n *Node, labels []string)) {
	var labels []string
	var rec func(*Node)
	rec = func(n *Node) {
		labels = append(labels, n.Label)
		fn(n, labels)
		for _, c := range n.Children {
			rec(c)
		}
		labels = labels[:len(labels)-1]
	}
	rec(d.Root)
}

// CountNodes returns the number of elements in the document.
func (d *Document) CountNodes() int {
	n := 0
	d.Walk(func(*Node, []string) { n++ })
	return n
}

// Equal reports structural equality of documents (labels, texts, and child
// order).
func (d *Document) Equal(o *Document) bool { return nodeEqual(d.Root, o.Root) }

func nodeEqual(a, b *Node) bool {
	if a.Label != b.Label || a.Text != b.Text || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !nodeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Clone deep-copies the document.
func (d *Document) Clone() *Document { return &Document{Root: cloneNode(d.Root)} }

func cloneNode(n *Node) *Node {
	c := &Node{Label: n.Label, Text: n.Text}
	for _, ch := range n.Children {
		c.Children = append(c.Children, cloneNode(ch))
	}
	return c
}

// hash computes a structural fingerprint used by canonical ordering.
func hashNode(n *Node) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	mix(n.Label)
	mix(n.Text)
	for _, c := range n.Children {
		ch := hashNode(c)
		h ^= ch
		h *= prime
	}
	return h
}

// Canonicalize returns a copy in which sibling lists are stably reordered by
// (label, structural hash). Shredded relational data without an explicit
// order column preserves document order only among siblings produced by the
// same schema node; canonical form is the right equality modulus for
// shred-then-reconstruct round trips (see internal/shred).
func (d *Document) Canonicalize() *Document {
	c := d.Clone()
	var rec func(*Node)
	rec = func(n *Node) {
		for _, ch := range n.Children {
			rec(ch)
		}
		sort.SliceStable(n.Children, func(i, j int) bool {
			a, b := n.Children[i], n.Children[j]
			if a.Label != b.Label {
				return a.Label < b.Label
			}
			return hashNode(a) < hashNode(b)
		})
	}
	rec(c.Root)
	return c
}
