package xmltree

import (
	"math/rand"
	"strings"
	"testing"

	"xmlsql/internal/pathexpr"
)

func TestParseSerializeRoundTrip(t *testing.T) {
	in := `<Site><Regions><Africa><Item><name>x</name></Item></Africa></Regions></Site>`
	d, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	out := d.String()
	d2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !d.Equal(d2) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", d, d2)
	}
}

func TestParseEscaping(t *testing.T) {
	d := &Document{Root: NewText("a", `x < y & "z"`)}
	d2, err := ParseString(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(d2) {
		t.Errorf("escaped text round trip mismatch: %q vs %q", d.Root.Text, d2.Root.Text)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"<a><b></a></b>",
		"<a></a><b></b>",
		"<a>",
		"just text",
	} {
		if _, err := ParseString(in); err == nil {
			t.Errorf("ParseString(%q) accepted", in)
		}
	}
}

func TestWalkOrderAndCount(t *testing.T) {
	d, _ := ParseString(`<a><b><c/></b><d/></a>`)
	var order []string
	d.Walk(func(n *Node, labels []string) {
		order = append(order, strings.Join(labels, "/"))
	})
	want := []string{"a", "a/b", "a/b/c", "a/d"}
	if strings.Join(order, " ") != strings.Join(want, " ") {
		t.Errorf("walk order = %v", order)
	}
	if d.CountNodes() != 4 {
		t.Errorf("CountNodes = %d", d.CountNodes())
	}
}

func TestEqualAndClone(t *testing.T) {
	d, _ := ParseString(`<a><b>1</b><c>2</c></a>`)
	c := d.Clone()
	if !d.Equal(c) {
		t.Error("clone not equal")
	}
	c.Root.Children[0].Text = "changed"
	if d.Equal(c) {
		t.Error("mutating clone affected original comparison")
	}
	if d.Root.Children[0].Text != "1" {
		t.Error("clone shares nodes with original")
	}
}

func TestCanonicalize(t *testing.T) {
	a, _ := ParseString(`<a><c>2</c><b>1</b></a>`)
	b, _ := ParseString(`<a><b>1</b><c>2</c></a>`)
	if a.Equal(b) {
		t.Fatal("setup: documents should differ before canonicalization")
	}
	if !a.Canonicalize().Equal(b.Canonicalize()) {
		t.Error("canonical forms must be equal")
	}
	// Same-label siblings with different content keep both copies.
	c, _ := ParseString(`<a><b>1</b><b>2</b></a>`)
	if c.Canonicalize().CountNodes() != 3 {
		t.Error("canonicalization must not merge siblings")
	}
}

func TestMatchNodes(t *testing.T) {
	d, _ := ParseString(`<a><b><c>1</c></b><b><c>2</c></b><c>3</c></a>`)
	got := MatchNodes(d, pathexpr.MustParse("//c"))
	if len(got) != 3 {
		t.Errorf("//c matched %d nodes, want 3", len(got))
	}
	got = MatchNodes(d, pathexpr.MustParse("/a/b/c"))
	if len(got) != 2 {
		t.Errorf("/a/b/c matched %d nodes, want 2", len(got))
	}
	got = MatchNodes(d, pathexpr.MustParse("/a/c"))
	if len(got) != 1 || got[0].Text != "3" {
		t.Errorf("/a/c matched %v", got)
	}
}

// TestMatchNodesAgainstNFA cross-checks the DFA evaluator against the plain
// NFA matcher on random documents and queries.
func TestMatchNodesAgainstNFA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"a", "b", "c"}
	var gen func(depth int) *Node
	gen = func(depth int) *Node {
		n := &Node{Label: labels[rng.Intn(len(labels))]}
		if depth < 4 {
			kids := rng.Intn(3)
			for i := 0; i < kids; i++ {
				n.Children = append(n.Children, gen(depth+1))
			}
		}
		return n
	}
	queries := []string{"//a", "/a/b", "//a//b", "/a//c", "//b/c", "//a/b//c"}
	for i := 0; i < 300; i++ {
		d := &Document{Root: gen(0)}
		q := pathexpr.MustParse(queries[rng.Intn(len(queries))])
		a := MatchNodes(d, q)
		b := MatchNodesNFA(d, q)
		if len(a) != len(b) {
			t.Fatalf("DFA found %d, NFA %d for %s on\n%s", len(a), len(b), q, d)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("match order differs for %s", q)
			}
		}
	}
}

func TestSerializeEmptyAndText(t *testing.T) {
	d := &Document{Root: NewElem("a", NewElem("empty"), NewText("t", "v"))}
	s := d.String()
	if !strings.Contains(s, "<empty/>") || !strings.Contains(s, "<t>v</t>") {
		t.Errorf("serialization:\n%s", s)
	}
}
