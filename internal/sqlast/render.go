package sqlast

import "strings"

// SQL renders the query as SQL text in the paper's style: lowercase keywords,
// one clause per line, UNION ALL between branches.
func (q *Query) SQL() string { return q.SQLFor(DialectDefault) }

// SQLFor renders the query as SQL text for a concrete dialect: identifier
// quoting, keyword case, and literal escaping follow the dialect, while the
// clause-per-line layout stays the same.
func (q *Query) SQLFor(d *Dialect) string {
	var b strings.Builder
	q.renderInto(&b, "", d.or())
	return b.String()
}

func (q *Query) renderInto(b *strings.Builder, indent string, d *Dialect) {
	if len(q.With) > 0 {
		b.WriteString(indent)
		b.WriteString(d.kw("with "))
		recursive := false
		for _, c := range q.With {
			if c.Recursive {
				recursive = true
			}
		}
		if recursive {
			b.WriteString(d.kw("recursive "))
		}
		for i, c := range q.With {
			if i > 0 {
				b.WriteString(",\n")
				b.WriteString(indent)
			}
			b.WriteString(d.Ident(c.Name))
			b.WriteString(d.kw(" as ("))
			b.WriteString("\n")
			c.Body.renderInto(b, indent+"  ", d)
			b.WriteString("\n")
			b.WriteString(indent)
			b.WriteString(")")
		}
		b.WriteString("\n")
	}
	for i, s := range q.Selects {
		if i > 0 {
			b.WriteString("\n")
			b.WriteString(indent)
			b.WriteString(d.kw("union all"))
			b.WriteString("\n")
		}
		s.renderInto(b, indent, d)
	}
}

func (s *Select) renderInto(b *strings.Builder, indent string, d *Dialect) {
	b.WriteString(indent)
	b.WriteString(d.kw("select "))
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		c.render(b, d)
	}
	b.WriteString("\n")
	b.WriteString(indent)
	b.WriteString(d.kw("from   "))
	for i, f := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		f.render(b, d)
	}
	if s.Where != nil {
		b.WriteString("\n")
		b.WriteString(indent)
		b.WriteString(d.kw("where  "))
		s.Where.render(b, d)
	}
}

// SQL renders a single select block.
func (s *Select) SQL() string {
	var b strings.Builder
	s.renderInto(&b, "", DialectDefault)
	return b.String()
}

// ExprString renders an expression alone, e.g. for structural comparison of
// predicates.
func ExprString(e Expr) string {
	if e == nil {
		return "TRUE"
	}
	var b strings.Builder
	e.render(&b, DialectDefault)
	return b.String()
}

// Shape summarizes the structural complexity of a query: the number of UNION
// ALL branches, the total number of joins (FROM items minus one, per branch,
// including CTE bodies), and whether recursion is used. The paper's argument
// is entirely about this shape.
type Shape struct {
	Branches  int
	Joins     int
	CTEs      int
	Recursive bool
}

// Shape computes the query's Shape.
func (q *Query) Shape() Shape {
	var sh Shape
	q.addShape(&sh)
	return sh
}

func (q *Query) addShape(sh *Shape) {
	for _, c := range q.With {
		sh.CTEs++
		if c.Recursive {
			sh.Recursive = true
		}
		c.Body.addShape(sh)
	}
	sh.Branches += len(q.Selects)
	for _, s := range q.Selects {
		if n := len(s.From) - 1; n > 0 {
			sh.Joins += n
		}
	}
}

// String renders the shape compactly, e.g. "6 branches, 12 joins".
func (sh Shape) String() string {
	var b strings.Builder
	writeCount(&b, sh.Branches, "branch", "branches")
	b.WriteString(", ")
	writeCount(&b, sh.Joins, "join", "joins")
	if sh.CTEs > 0 {
		b.WriteString(", ")
		writeCount(&b, sh.CTEs, "cte", "ctes")
	}
	if sh.Recursive {
		b.WriteString(", recursive")
	}
	return b.String()
}

func writeCount(b *strings.Builder, n int, singular, plural string) {
	if n == 1 {
		b.WriteString("1 ")
		b.WriteString(singular)
		return
	}
	b.WriteString(itoa(n))
	b.WriteByte(' ')
	b.WriteString(plural)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
