package sqlast

import (
	"strings"
	"testing"
)

func col(t, c string) ColRef { return ColRef{Table: t, Column: c} }

func TestConjFlattening(t *testing.T) {
	if Conj() != nil {
		t.Error("empty Conj must be nil (TRUE)")
	}
	single := Eq(col("a", "x"), IntLit(1))
	if got := Conj(single); got != Expr(single) {
		t.Error("single-child Conj must unwrap")
	}
	nested := Conj(Conj(Eq(col("a", "x"), IntLit(1)), Eq(col("a", "y"), IntLit(2))), Eq(col("b", "z"), IntLit(3)))
	and, ok := nested.(And)
	if !ok || len(and.Kids) != 3 {
		t.Errorf("nested Conj not flattened: %#v", nested)
	}
	if got := Conj(nil, single, nil); got != Expr(single) {
		t.Error("nil conjuncts must be dropped")
	}
}

func TestDisjFlattening(t *testing.T) {
	a := Eq(col("a", "x"), IntLit(1))
	b := Eq(col("a", "x"), IntLit(2))
	or, ok := Disj(a, Disj(b, a)).(Or)
	if !ok || len(or.Kids) != 3 {
		t.Errorf("nested Disj not flattened")
	}
	if Disj(a, nil) != nil {
		t.Error("a TRUE disjunct must collapse the disjunction to TRUE (nil)")
	}
	if _, ok := Disj().(Or); !ok {
		t.Error("empty Disj must be FALSE")
	}
}

func TestRenderPrecedence(t *testing.T) {
	// a AND (b OR c) needs parentheses around the OR.
	e := Conj(
		Eq(col("t", "a"), IntLit(1)),
		Disj(Eq(col("t", "b"), IntLit(2)), Eq(col("t", "c"), IntLit(3))),
	)
	got := ExprString(e)
	want := "t.a = 1 AND (t.b = 2 OR t.c = 3)"
	if got != want {
		t.Errorf("render = %q, want %q", got, want)
	}
}

func TestRenderSelect(t *testing.T) {
	q := SingleSelect(&Select{
		Cols: []SelectItem{Col("C", "category")},
		From: []FromItem{From("InCat", "C")},
	})
	got := q.SQL()
	if !strings.Contains(got, "select C.category") || !strings.Contains(got, "from   InCat C") {
		t.Errorf("unexpected SQL:\n%s", got)
	}
}

func TestRenderUnionAndWith(t *testing.T) {
	inner := SingleSelect(&Select{
		Cols: []SelectItem{Star("S")},
		From: []FromItem{From("S1", "S")},
	})
	q := &Query{
		With: []CTE{{Name: "temp_21", Body: inner}},
		Selects: []*Select{
			{Cols: []SelectItem{Col("T", "C1")}, From: []FromItem{From("temp_21", "T")}},
			{Cols: []SelectItem{Col("U", "C1")}, From: []FromItem{From("temp_21", "U")}},
		},
	}
	got := q.SQL()
	for _, want := range []string{"with temp_21 as (", "union all", "select T.C1", "S.*"} {
		if !strings.Contains(got, want) {
			t.Errorf("SQL missing %q:\n%s", want, got)
		}
	}
}

func TestRenderRecursiveWith(t *testing.T) {
	body := &Query{Selects: []*Select{
		{Cols: []SelectItem{{Expr: IntLit(1), As: "node"}, {Expr: col("R", "id"), As: "id"}}, From: []FromItem{From("R8", "R")}},
		{Cols: []SelectItem{{Expr: IntLit(2), As: "node"}, {Expr: col("R", "id"), As: "id"}},
			From:  []FromItem{From("t", "T"), From("R9", "R")},
			Where: Eq(col("R", "parentid"), col("T", "id"))},
	}}
	q := &Query{
		With:    []CTE{{Name: "t", Recursive: true, Body: body}},
		Selects: []*Select{{Cols: []SelectItem{Col("T", "id")}, From: []FromItem{From("t", "T")}}},
	}
	if !strings.Contains(q.SQL(), "with recursive t as (") {
		t.Errorf("missing recursive keyword:\n%s", q.SQL())
	}
	sh := q.Shape()
	if !sh.Recursive || sh.CTEs != 1 || sh.Branches != 3 || sh.Joins != 1 {
		t.Errorf("shape = %v", sh)
	}
}

func TestShapeString(t *testing.T) {
	sh := Shape{Branches: 1, Joins: 0}
	if sh.String() != "1 branch, 0 joins" {
		t.Errorf("shape string = %q", sh.String())
	}
	sh = Shape{Branches: 6, Joins: 12, CTEs: 1, Recursive: true}
	if got := sh.String(); got != "6 branches, 12 joins, 1 cte, recursive" {
		t.Errorf("shape string = %q", got)
	}
}

func TestInAndIsNullRender(t *testing.T) {
	e := Conj(
		In{Left: col("R2", "pc"), List: []Lit{IntLit(2), IntLit(3)}},
		IsNull{Left: col("E", "parentid")},
	)
	got := ExprString(e)
	want := "R2.pc IN (2, 3) AND E.parentid IS NULL"
	if got != want {
		t.Errorf("render = %q, want %q", got, want)
	}
}

func TestUnionMergesWith(t *testing.T) {
	a := &Query{With: []CTE{{Name: "x", Body: SingleSelect(&Select{Cols: []SelectItem{Col("R", "id")}, From: []FromItem{From("R", "R")}})}},
		Selects: []*Select{{Cols: []SelectItem{Col("x", "id")}, From: []FromItem{From("x", "x")}}}}
	b := &Query{Selects: []*Select{{Cols: []SelectItem{Col("S", "id")}, From: []FromItem{From("S", "S")}}}}
	u := Union(a, b)
	if len(u.With) != 1 || len(u.Selects) != 2 {
		t.Errorf("union merged wrongly: %d with, %d selects", len(u.With), len(u.Selects))
	}
}

func TestStringLitEscapesNothingButRenders(t *testing.T) {
	if got := ExprString(StringLit("InCategory")); got != "'InCategory'" {
		t.Errorf("string literal = %q", got)
	}
	if got := ExprString(Lit{}); got != "NULL" {
		t.Errorf("zero literal = %q", got)
	}
}
