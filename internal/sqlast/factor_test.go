package sqlast

import (
	"strings"
	"testing"
)

// chainBranch builds `SELECT C.col FROM A a, B b, C c WHERE b.parentid = a.id
// AND c.parentid = b.id AND <extra>` — the root-to-leaf join chain shape the
// translators emit.
func chainBranch(projCol string, extra ...Expr) *Select {
	where := []Expr{
		Eq(ColRef{Table: "b", Column: "parentid"}, ColRef{Table: "a", Column: "id"}),
		Eq(ColRef{Table: "c", Column: "parentid"}, ColRef{Table: "b", Column: "id"}),
	}
	where = append(where, extra...)
	return &Select{
		Cols:  []SelectItem{Col("c", projCol)},
		From:  []FromItem{From("A", "a"), From("B", "b"), From("C", "c")},
		Where: Conj(where...),
	}
}

func TestFactorCollapseDistinctLiterals(t *testing.T) {
	q := &Query{Selects: []*Select{
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(1))),
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(2))),
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(3))),
	}}
	got, changed := FactorUnions(q, nil)
	if !changed {
		t.Fatalf("expected collapse, got unchanged:\n%s", q.SQL())
	}
	if len(got.Selects) != 1 || len(got.With) != 0 {
		t.Fatalf("expected 1 branch and no CTEs, got:\n%s", got.SQL())
	}
	sql := got.SQL()
	if !strings.Contains(sql, "IN (1, 2, 3)") {
		t.Fatalf("expected IN (1, 2, 3):\n%s", sql)
	}
	// The input query must be untouched.
	if len(q.Selects) != 3 {
		t.Fatalf("input mutated: %d branches", len(q.Selects))
	}
}

func TestFactorCollapseKeepsDuplicateLiterals(t *testing.T) {
	// Two branches with the SAME literal are NOT disjoint: collapsing them
	// would halve the multiset. They must stay separate branches (prefix
	// factoring may still share their join).
	q := &Query{Selects: []*Select{
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(1))),
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(1))),
	}}
	got, _ := FactorUnions(q, nil)
	if len(got.Selects) != 2 {
		t.Fatalf("duplicate-literal branches must not collapse:\n%s", got.SQL())
	}
}

func TestFactorCollapseThreeOfFour(t *testing.T) {
	// Literals 1,2,2,3: the duplicate 2 stays its own branch.
	q := &Query{Selects: []*Select{
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(1))),
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(2))),
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(2))),
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(3))),
	}}
	got, changed := FactorUnions(q, nil)
	if !changed {
		t.Fatalf("expected a rewrite:\n%s", q.SQL())
	}
	sql := got.SQL()
	if !strings.Contains(sql, "IN (1, 2, 3)") {
		t.Fatalf("expected first-seen literals to merge:\n%s", sql)
	}
	if !strings.Contains(sql, "= 2") && !strings.Contains(sql, "p1_code = 2") {
		t.Fatalf("expected the duplicate literal to survive as its own branch:\n%s", sql)
	}
}

func TestFactorPrefixCTE(t *testing.T) {
	// Branches share the a⋈b prefix but differ structurally in the suffix
	// (different filters on two columns), so collapse does not apply and the
	// prefix hoists into a CTE.
	q := &Query{Selects: []*Select{
		chainBranch("v",
			Eq(ColRef{Table: "b", Column: "kind"}, StringLit("x")),
			Eq(ColRef{Table: "b", Column: "sub"}, StringLit("p"))),
		chainBranch("v",
			Eq(ColRef{Table: "b", Column: "kind"}, StringLit("y")),
			Eq(ColRef{Table: "b", Column: "sub"}, StringLit("q"))),
	}}
	got, changed := FactorUnions(q, nil)
	if !changed {
		t.Fatalf("expected prefix factoring:\n%s", q.SQL())
	}
	if len(got.With) != 1 {
		t.Fatalf("expected exactly one prefix CTE:\n%s", got.SQL())
	}
	cte := got.With[0]
	if cte.Recursive {
		t.Fatalf("prefix CTE must be non-recursive")
	}
	// Only single-alias filters differ, so the prefix extends through the
	// whole chain: the CTE holds the full 3-way join and each branch is a
	// pure filter over it.
	body := cte.Body.Selects[0]
	if len(body.From) != 3 || body.From[0].Source != "A" || body.From[2].Source != "C" {
		t.Fatalf("prefix CTE should hold the whole A⋈B⋈C chain:\n%s", got.SQL())
	}
	for _, s := range got.Selects {
		if len(s.From) != 1 || s.From[0].Source != cte.Name {
			t.Fatalf("branch should be a pure filter over the CTE:\n%s", got.SQL())
		}
	}
	// The branch-specific filters are deferred, not lifted into the CTE.
	bodySQL := SingleSelect(body).SQL()
	for _, lit := range []string{"'x'", "'y'", "'p'", "'q'"} {
		if strings.Contains(bodySQL, lit) {
			t.Fatalf("branch filter %s must not be lifted into the CTE:\n%s", lit, got.SQL())
		}
	}
}

func TestFactorPrefixSharedFilterLifted(t *testing.T) {
	// A single-alias filter present in EVERY member belongs in the CTE.
	q := &Query{Selects: []*Select{
		chainBranch("v",
			Eq(ColRef{Table: "a", Column: "tag"}, StringLit("root")),
			Eq(ColRef{Table: "c", Column: "kind"}, StringLit("x"))),
		chainBranch("w",
			Eq(ColRef{Table: "a", Column: "tag"}, StringLit("root")),
			Eq(ColRef{Table: "c", Column: "kind"}, StringLit("y"))),
	}}
	got, changed := FactorUnions(q, nil)
	if !changed || len(got.With) != 1 {
		t.Fatalf("expected prefix factoring:\n%s", got.SQL())
	}
	bodySQL := SingleSelect(got.With[0].Body.Selects[0]).SQL()
	if !strings.Contains(bodySQL, "'root'") {
		t.Fatalf("shared filter should be lifted into the CTE:\n%s", got.SQL())
	}
}

func TestFactorStarExpansion(t *testing.T) {
	branch := func(code int64) *Select {
		return &Select{
			Cols: []SelectItem{Star("b")},
			From: []FromItem{From("A", "a"), From("B", "b"), From("C", "c")},
			Where: Conj(
				Eq(ColRef{Table: "b", Column: "parentid"}, ColRef{Table: "a", Column: "id"}),
				Eq(ColRef{Table: "c", Column: "parentid"}, ColRef{Table: "b", Column: "id"}),
				Eq(ColRef{Table: "c", Column: "kind"}, StringLit("x")),
				Eq(ColRef{Table: "c", Column: "sub"}, IntLit(code)),
			),
		}
	}
	q := &Query{Selects: []*Select{branch(1), branch(2)}}

	// Without a resolver the star over the prefix alias cannot be expanded;
	// the query must come back unfactored (collapse also does not apply: the
	// branches differ in one literal — wait, they DO collapse).
	// Use structurally-different branches to isolate the star case.
	q2 := &Query{Selects: []*Select{
		branchWithExtra(branch(1), Eq(ColRef{Table: "c", Column: "extra"}, IntLit(9))),
		branch(2),
	}}
	if got, changed := FactorUnions(q2, nil); changed && len(got.With) > 0 {
		t.Fatalf("star over prefix without resolver must not factor:\n%s", got.SQL())
	}

	cols := func(table string) []string {
		if table == "B" {
			return []string{"id", "parentid", "val"}
		}
		return nil
	}
	got, changed := FactorUnions(q2, cols)
	if !changed || len(got.With) != 1 {
		t.Fatalf("expected factoring with resolver:\n%s", q2.SQL())
	}
	sql := got.SQL()
	for _, want := range []string{"p1_id AS id", "p1_parentid AS parentid", "p1_val AS val"} {
		if !strings.Contains(sql, want) {
			t.Fatalf("expanded star should project %s:\n%s", want, sql)
		}
	}
	_ = q
}

func branchWithExtra(s *Select, extra Expr) *Select {
	return &Select{Cols: s.Cols, From: s.From, Where: Conj(append(Conjuncts(s.Where), extra)...)}
}

func TestFactorRecursiveCTEUntouched(t *testing.T) {
	rec := CTE{Name: "r", Recursive: true, Body: &Query{Selects: []*Select{
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(1))),
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(2))),
	}}}
	q := &Query{
		With: []CTE{rec},
		Selects: []*Select{{
			Cols: []SelectItem{Col("r", "v")},
			From: []FromItem{From("r", "")},
		}},
	}
	got, changed := FactorUnions(q, nil)
	if changed {
		t.Fatalf("nothing outside the recursive body should change:\n%s", got.SQL())
	}
	if len(got.With[0].Body.Selects) != 2 {
		t.Fatalf("recursive CTE body must not be rewritten")
	}
}

func TestFactorNonRecursiveCTEBodyFactored(t *testing.T) {
	// The translator emits temp CTEs whose bodies are themselves UNION ALLs;
	// the rewrite must reach inside them.
	body := &Query{Selects: []*Select{
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(1))),
		chainBranch("v", Eq(ColRef{Table: "b", Column: "code"}, IntLit(2))),
	}}
	q := &Query{
		With: []CTE{{Name: "t", Body: body}},
		Selects: []*Select{{
			Cols: []SelectItem{Col("t", "v")},
			From: []FromItem{From("t", "")},
		}},
	}
	got, changed := FactorUnions(q, nil)
	if !changed {
		t.Fatalf("expected CTE body collapse:\n%s", q.SQL())
	}
	if n := len(got.With[0].Body.Selects); n != 1 {
		t.Fatalf("CTE body should collapse to 1 branch, got %d:\n%s", n, got.SQL())
	}
	// Original untouched.
	if len(body.Selects) != 2 {
		t.Fatalf("input CTE body mutated")
	}
}

func TestFactorNameCollisionAvoided(t *testing.T) {
	// A table named "jp" must not collide with the minted CTE name.
	mk := func(k string, extra Expr) *Select {
		return &Select{
			Cols: []SelectItem{Col("c", k)},
			From: []FromItem{From("jp", "a"), From("B", "b"), From("C", "c")},
			Where: Conj(
				Eq(ColRef{Table: "b", Column: "parentid"}, ColRef{Table: "a", Column: "id"}),
				Eq(ColRef{Table: "c", Column: "parentid"}, ColRef{Table: "b", Column: "id"}),
				extra,
			),
		}
	}
	q := &Query{Selects: []*Select{
		mk("v", Eq(ColRef{Table: "b", Column: "x"}, StringLit("p"))),
		mk("w", Eq(ColRef{Table: "b", Column: "y"}, StringLit("q"))),
	}}
	got, changed := FactorUnions(q, nil)
	if !changed || len(got.With) != 1 {
		t.Fatalf("expected factoring:\n%s", got.SQL())
	}
	if got.With[0].Name == "jp" {
		t.Fatalf("minted CTE name collides with existing table name jp")
	}
}

func TestFactorLeavesSingleBranchAlone(t *testing.T) {
	q := SingleSelect(chainBranch("v"))
	got, changed := FactorUnions(q, nil)
	if changed || got != q {
		t.Fatalf("single-branch query must be returned unchanged by pointer")
	}
}

func TestCanonExprSymmetry(t *testing.T) {
	a := Eq(ColRef{Table: "x", Column: "id"}, ColRef{Table: "y", Column: "pid"})
	b := Eq(ColRef{Table: "y", Column: "pid"}, ColRef{Table: "x", Column: "id"})
	if CanonExpr(a, nil) != CanonExpr(b, nil) {
		t.Fatalf("= must canonicalize symmetrically: %q vs %q", CanonExpr(a, nil), CanonExpr(b, nil))
	}
	ne := Cmp{Op: OpNe, Left: IntLit(1), Right: IntLit(2)}
	eq := Eq(IntLit(1), IntLit(2))
	if CanonExpr(ne, nil) == CanonExpr(eq, nil) {
		t.Fatalf("<> and = must not collide")
	}
}
