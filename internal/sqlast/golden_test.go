package sqlast_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"xmlsql/internal/core"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden SQL files")

// goldenCase pins the rendered SQL of one query shape the translators emit.
// Together the cases cover the full rendering surface: plain scans, multiway
// join chains, UNION ALL, and recursive CTEs, each rendered in every dialect.
type goldenCase struct {
	name   string
	schema *schema.Schema
	query  string
	// naive selects the baseline translator (UNION of root-to-leaf chains)
	// instead of the pruning translator.
	naive bool
}

func goldenCases() []goldenCase {
	return []goldenCase{
		// The paper's flagship result: Q1 prunes to a single scan of InCat.
		{name: "single-scan", schema: workloads.XMark(), query: workloads.QueryQ1},
		// A fully specified path keeps a multiway join chain in one block.
		{name: "multiway-join", schema: workloads.XMark(), query: workloads.QueryQ2, naive: true},
		// The baseline on //Item enumerates every continent: UNION ALL.
		{name: "union-all", schema: workloads.XMark(), query: workloads.QueryQ1, naive: true},
		// S3's cyclic mapping forces a WITH RECURSIVE program.
		{name: "recursive-cte", schema: workloads.S3(), query: workloads.QueryQ6, naive: true},
		// The pruning translator on a DAG merges branches disjunctively.
		{name: "dag-merged", schema: workloads.S2(), query: "//s/t1"},
	}
}

func buildQuery(t *testing.T, tc goldenCase) *sqlast.Query {
	t.Helper()
	path, err := pathexpr.Parse(tc.query)
	if err != nil {
		t.Fatalf("parse %q: %v", tc.query, err)
	}
	g, err := pathid.Build(tc.schema, path)
	if err != nil {
		t.Fatalf("pathid %q: %v", tc.query, err)
	}
	if tc.naive {
		q, err := translate.Naive(g)
		if err != nil {
			t.Fatalf("naive %q: %v", tc.query, err)
		}
		return q
	}
	res, err := core.Translate(g)
	if err != nil {
		t.Fatalf("translate %q: %v", tc.query, err)
	}
	return res.Query
}

// TestRenderGolden locks the renderer's exact output for every translated
// query shape in every dialect. Run with -update after an intentional
// rendering change.
func TestRenderGolden(t *testing.T) {
	for _, tc := range goldenCases() {
		q := buildQuery(t, tc)
		for _, d := range sqlast.Dialects() {
			t.Run(tc.name+"/"+d.Name(), func(t *testing.T) {
				got := q.SQLFor(d) + "\n"
				path := filepath.Join("testdata", tc.name+"."+d.Name()+".golden")
				if *update {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run go test ./internal/sqlast -update): %v", err)
				}
				if got != string(want) {
					t.Errorf("rendered SQL diverged from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
				}
			})
		}
	}
}

// TestGoldenShapes guards against the cases silently degenerating (e.g. the
// pruning translator regressing to a union, which would leave the single-scan
// golden pinning the wrong shape).
func TestGoldenShapes(t *testing.T) {
	shapes := map[string]func(sqlast.Shape) bool{
		"single-scan":   func(s sqlast.Shape) bool { return s.Branches == 1 && s.Joins == 0 && !s.Recursive },
		"multiway-join": func(s sqlast.Shape) bool { return s.Branches == 1 && s.Joins >= 2 },
		"union-all":     func(s sqlast.Shape) bool { return s.Branches >= 2 },
		"recursive-cte": func(s sqlast.Shape) bool { return s.Recursive && s.CTEs >= 1 },
		"dag-merged":    func(s sqlast.Shape) bool { return !s.Recursive },
	}
	for _, tc := range goldenCases() {
		check := shapes[tc.name]
		if check == nil {
			t.Fatalf("no shape expectation for case %s", tc.name)
		}
		if sh := buildQuery(t, tc).Shape(); !check(sh) {
			t.Errorf("%s: unexpected shape %s", tc.name, sh)
		}
	}
}
