// Shared-work rewrite: the translations of §3.4 (and the baseline of [9])
// emit UNION ALL queries whose branches re-join the same root-to-leaf prefix
// — six copies of the Site⋈Item chain for XMark's Q1, six Edge self-join
// chains for the schema-oblivious mapping's Q8. FactorUnions applies two
// multi-query-optimization rewrites (in the spirit of Sellis, TODS 1988) so
// the repeated work is expressed — and therefore executed, on any backend —
// exactly once:
//
//  1. Disjoint-branch collapse: branches identical up to a single
//     equality-with-literal conjunct on one column, with pairwise-distinct
//     literals, merge into one branch with an IN list. Distinct literals
//     make the branch selections disjoint, so UNION ALL multiplicity is
//     preserved exactly.
//  2. Common join-prefix hoisting: branches sharing a maximal join prefix
//     (same sources in order, same join predicates level by level) have the
//     prefix hoisted into one non-recursive WITH CTE; each branch re-reads
//     the CTE and applies its own deferred single-alias filters and suffix
//     joins. Single-alias conjuncts commute with the joins above them, so a
//     branch-specific filter is deferred past the CTE rather than blocking
//     the factoring.
package sqlast

import (
	"sort"
	"strings"
)

// ColumnsFunc resolves a base table name to its ordered column names. It is
// consulted only to expand `alias.*` projections over a factored prefix; a
// nil func (or a nil return) leaves such branches unfactored rather than
// guessing a layout.
type ColumnsFunc func(table string) []string

// FactorUnions rewrites q so that work shared across UNION ALL branches is
// expressed once, returning the rewritten query and whether anything
// changed. The input query is never mutated (plans may be cached and
// shared); unchanged selects are reused by pointer. Recursive CTE bodies are
// left untouched — their branch structure is the fixpoint's semantics, not
// repeated work.
func FactorUnions(q *Query, columns ColumnsFunc) (*Query, bool) {
	if q == nil || (len(q.Selects) == 0 && len(q.With) == 0) {
		return q, false
	}
	f := &factorer{columns: columns, used: map[string]bool{}}
	collectNames(q, f.used)
	return f.query(q, map[string][]string{})
}

type factorer struct {
	columns ColumnsFunc
	used    map[string]bool // every name in the query: sources, aliases, CTEs
	nameSeq int
}

// collectNames gathers every identifier the rewritten query must not shadow.
func collectNames(q *Query, acc map[string]bool) {
	for _, c := range q.With {
		acc[c.Name] = true
		collectNames(c.Body, acc)
	}
	for _, s := range q.Selects {
		for _, fi := range s.From {
			acc[fi.Source] = true
			if fi.Alias != "" {
				acc[fi.Alias] = true
			}
		}
	}
}

// newName mints a CTE name that collides with nothing in the query.
func (f *factorer) newName() string {
	for {
		f.nameSeq++
		n := "jp"
		if f.nameSeq > 1 {
			n += itoa(f.nameSeq)
		}
		if !f.used[n] {
			f.used[n] = true
			return n
		}
	}
}

// query rewrites one Query scope: non-recursive CTE bodies first (bottom-up),
// then the scope's own UNION ALL. env maps CTE names visible in this scope to
// their output columns (nil = unknown layout).
func (f *factorer) query(q *Query, env map[string][]string) (*Query, bool) {
	// Copy the environment: CTE definitions are scoped to this query.
	scope := make(map[string][]string, len(env)+len(q.With))
	for k, v := range env {
		scope[k] = v
	}
	changed := false
	with := append([]CTE(nil), q.With...)
	for i, c := range with {
		if !c.Recursive {
			if body, ch := f.query(c.Body, scope); ch {
				with[i] = CTE{Name: c.Name, Body: body}
				changed = true
			}
		}
		scope[c.Name] = f.outputCols(with[i].Body, scope)
	}
	sels, newCTEs, ch := f.selects(q.Selects, scope)
	if !ch && !changed {
		return q, false
	}
	return &Query{With: append(with, newCTEs...), Selects: sels}, true
}

// outputCols derives a query's output column names from its first branch, or
// nil when a star projection cannot be expanded.
func (f *factorer) outputCols(q *Query, env map[string][]string) []string {
	if len(q.Selects) == 0 {
		return nil
	}
	s := q.Selects[0]
	aliasSource := map[string]string{}
	for _, fi := range s.From {
		a := fi.Alias
		if a == "" {
			a = fi.Source
		}
		aliasSource[a] = fi.Source
	}
	var out []string
	for _, item := range s.Cols {
		if item.Star {
			cols := f.sourceCols(aliasSource[item.StarTable], env)
			if cols == nil {
				return nil
			}
			out = append(out, cols...)
			continue
		}
		switch {
		case item.As != "":
			out = append(out, item.As)
		default:
			cr, ok := item.Expr.(ColRef)
			if !ok {
				return nil
			}
			out = append(out, cr.Column)
		}
	}
	return out
}

// sourceCols resolves a FROM source (CTE in scope, then base table) to its
// ordered columns, or nil when unknown.
func (f *factorer) sourceCols(source string, env map[string][]string) []string {
	if cols, ok := env[source]; ok {
		return cols
	}
	if f.columns != nil {
		return f.columns(source)
	}
	return nil
}

// branchInfo is the canonical decomposition of one UNION branch.
type branchInfo struct {
	sel      *Select
	sources  []string
	aliases  []string
	aliasPos map[string]int
	conjs    []conjInfo
	// projCanon is the order-sensitive canonical projection signature,
	// including output names (UNION column names come from branch order).
	projCanon string
}

type conjInfo struct {
	expr  Expr
	canon string // aliases renamed to their FROM position ($0, $1, …)
	level int    // max referenced FROM position
	// single is the only referenced position, or -1 when the conjunct spans
	// several (a join predicate — never deferrable past the prefix).
	single int
}

// analyze decomposes a branch, or returns nil when the branch uses a shape
// the rewrite does not reason about (duplicate aliases, unqualified or
// unknown column references, constant predicates, non-column projections).
func analyze(sel *Select) *branchInfo {
	if sel == nil || len(sel.From) == 0 {
		return nil
	}
	info := &branchInfo{sel: sel, aliasPos: map[string]int{}}
	for i, fi := range sel.From {
		a := fi.Alias
		if a == "" {
			a = fi.Source
		}
		if _, dup := info.aliasPos[a]; dup {
			return nil
		}
		info.aliasPos[a] = i
		info.aliases = append(info.aliases, a)
		info.sources = append(info.sources, fi.Source)
	}
	rename := func(a string) string { return "$" + itoa(info.aliasPos[a]) }
	for _, c := range Conjuncts(sel.Where) {
		set := exprAliasSet(c, map[string]bool{})
		if len(set) == 0 {
			return nil
		}
		level, single := -1, -1
		for a := range set {
			p, known := info.aliasPos[a]
			if a == "" || !known {
				return nil
			}
			if p > level {
				level = p
			}
			single = p
		}
		if len(set) > 1 {
			single = -1
		}
		info.conjs = append(info.conjs, conjInfo{expr: c, canon: CanonExpr(c, rename), level: level, single: single})
	}
	var pc strings.Builder
	for _, item := range sel.Cols {
		if item.Star {
			if _, known := info.aliasPos[item.StarTable]; !known {
				return nil
			}
			pc.WriteString("*$")
			pc.WriteString(itoa(info.aliasPos[item.StarTable]))
		} else {
			switch item.Expr.(type) {
			case ColRef, Lit:
			default:
				return nil
			}
			cr, isCol := item.Expr.(ColRef)
			if isCol {
				if _, known := info.aliasPos[cr.Table]; !known || cr.Table == "" {
					return nil
				}
			}
			pc.WriteString(CanonExpr(item.Expr, rename))
			pc.WriteString(" as ")
			if item.As != "" {
				pc.WriteString(item.As)
			} else if isCol {
				pc.WriteString(cr.Column)
			}
		}
		pc.WriteByte('|')
	}
	info.projCanon = pc.String()
	return info
}

// selects rewrites one UNION ALL: collapse first (it can eliminate whole
// branches), then prefix factoring over what remains.
func (f *factorer) selects(sels []*Select, env map[string][]string) ([]*Select, []CTE, bool) {
	if len(sels) < 2 {
		return sels, nil, false
	}
	infos := make([]*branchInfo, len(sels))
	for i, s := range sels {
		infos[i] = analyze(s)
	}

	out, changed := f.collapse(sels, infos)
	if changed {
		// Re-derive the canonical forms of the merged branches.
		infos = make([]*branchInfo, len(out))
		for i, s := range out {
			infos[i] = analyze(s)
		}
	}

	newSels, ctes, ch2 := f.factorPrefixes(out, infos, env)
	return newSels, ctes, changed || ch2
}

// collapseCandidate describes one conjunct of a branch that could carry the
// branch's identity in a disjoint collapse: alias.col = literal.
type collapseCandidate struct {
	conjIdx int
	key     string // branch signature with this conjunct removed
	lit     Lit
	col     ColRef
}

func collapseCandidates(info *branchInfo) []collapseCandidate {
	var out []collapseCandidate
	for ci, c := range info.conjs {
		if c.single < 0 {
			continue
		}
		cmp, ok := c.expr.(Cmp)
		if !ok || cmp.Op != OpEq {
			continue
		}
		col, lit := cmp.Left, cmp.Right
		if _, isLit := col.(Lit); isLit {
			col, lit = lit, col
		}
		cr, okCol := col.(ColRef)
		l, okLit := lit.(Lit)
		if !okCol || !okLit || l.Value.IsNull() {
			continue
		}
		var b strings.Builder
		b.WriteString(strings.Join(info.sources, ","))
		b.WriteString("|")
		b.WriteString(info.projCanon)
		b.WriteString("|col:")
		b.WriteString("$" + itoa(info.aliasPos[cr.Table]) + "." + cr.Column)
		b.WriteString("|")
		rest := make([]string, 0, len(info.conjs)-1)
		for cj, o := range info.conjs {
			if cj != ci {
				rest = append(rest, o.canon)
			}
		}
		sort.Strings(rest)
		b.WriteString(strings.Join(rest, "&"))
		out = append(out, collapseCandidate{conjIdx: ci, key: b.String(), lit: l, col: cr})
	}
	return out
}

// collapse merges groups of branches that are identical except for one
// alias.col = literal conjunct with pairwise-distinct literals into a single
// branch testing alias.col IN (literals). Each original row satisfies
// exactly one branch's literal, so the merged branch reproduces the UNION
// ALL multiset exactly.
func (f *factorer) collapse(sels []*Select, infos []*branchInfo) ([]*Select, bool) {
	n := len(sels)
	cands := make([][]collapseCandidate, n)
	for i, info := range infos {
		if info != nil {
			cands[i] = collapseCandidates(info)
		}
	}
	consumed := make([]bool, n)
	replaced := make(map[int]*Select, n)
	changed := false
	for i := 0; i < n; i++ {
		if consumed[i] || infos[i] == nil {
			continue
		}
		for _, lead := range cands[i] {
			members := []int{i}
			lits := []Lit{lead.lit}
			picks := []collapseCandidate{lead}
			for j := i + 1; j < n; j++ {
				if consumed[j] || infos[j] == nil {
					continue
				}
				for _, c := range cands[j] {
					if c.key != lead.key {
						continue
					}
					distinct := true
					for _, have := range lits {
						if have.Value.Equal(c.lit.Value) {
							distinct = false
							break
						}
					}
					if distinct {
						members = append(members, j)
						lits = append(lits, c.lit)
						picks = append(picks, c)
					}
					break
				}
			}
			if len(members) < 2 {
				continue
			}
			// Merge into the lead branch's position, in member order.
			base := infos[i]
			in := In{Left: lead.col, List: lits}
			kids := make([]Expr, 0, len(base.conjs))
			for ci, c := range base.conjs {
				if ci == lead.conjIdx {
					kids = append(kids, in)
				} else {
					kids = append(kids, c.expr)
				}
			}
			replaced[i] = &Select{Cols: base.sel.Cols, From: base.sel.From, Where: Conj(kids...)}
			for _, m := range members {
				consumed[m] = true
			}
			consumed[i] = true
			changed = true
			break
		}
	}
	if !changed {
		return sels, false
	}
	out := make([]*Select, 0, n)
	for i, s := range sels {
		if r, ok := replaced[i]; ok {
			out = append(out, r)
		} else if !consumed[i] {
			out = append(out, s)
		}
	}
	return out, true
}

// factorGroup is a set of branches (by index) sharing the prefix levels
// 0..depth-1.
type factorGroup struct {
	idxs  []int
	depth int
}

// levelKey is a branch's signature at one join level: the source plus every
// multi-alias (join) conjunct consumed at that level. Single-alias conjuncts
// are excluded — they defer past a factored prefix — but differing join
// predicates stop the prefix, since deferring a join would turn the shared
// prefix into a cross product.
func levelKey(info *branchInfo, level int) string {
	if level >= len(info.sources) {
		return "$end"
	}
	var conds []string
	for _, c := range info.conjs {
		if c.level == level && c.single < 0 {
			conds = append(conds, c.canon)
		}
	}
	sort.Strings(conds)
	return info.sources[level] + "\x00" + strings.Join(conds, "&")
}

// partition recursively splits branches into maximal common-prefix groups.
func partition(infos []*branchInfo, idxs []int, level int) []factorGroup {
	if len(idxs) < 2 {
		return []factorGroup{{idxs: idxs, depth: level}}
	}
	type bucket struct {
		key  string
		idxs []int
	}
	var buckets []*bucket
	byKey := map[string]*bucket{}
	for _, i := range idxs {
		k := levelKey(infos[i], level)
		b := byKey[k]
		if b == nil {
			b = &bucket{key: k}
			byKey[k] = b
			buckets = append(buckets, b)
		}
		b.idxs = append(b.idxs, i)
	}
	var out []factorGroup
	for _, b := range buckets {
		if b.key == "$end" || len(b.idxs) < 2 {
			out = append(out, factorGroup{idxs: b.idxs, depth: level})
			continue
		}
		out = append(out, partition(infos, b.idxs, level+1)...)
	}
	return out
}

// factorPrefixes hoists each worthwhile group's common prefix into a CTE.
func (f *factorer) factorPrefixes(sels []*Select, infos []*branchInfo, env map[string][]string) ([]*Select, []CTE, bool) {
	var factorable []int
	for i, info := range infos {
		if info != nil {
			factorable = append(factorable, i)
		}
	}
	if len(factorable) < 2 {
		return sels, nil, false
	}
	var ctes []CTE
	out := append([]*Select(nil), sels...)
	changed := false
	for _, g := range partition(infos, factorable, 0) {
		if len(g.idxs) < 2 || g.depth == 0 {
			continue
		}
		if cte, rewritten, ok := f.buildGroup(infos, g, env); ok {
			ctes = append(ctes, cte)
			for j, idx := range g.idxs {
				out[idx] = rewritten[j]
			}
			changed = true
		}
	}
	if !changed {
		return sels, nil, false
	}
	return out, ctes, true
}

// buildGroup materializes one group's shared prefix as a CTE and rewrites
// each member to read it. Returns ok=false when the group is not worth (or
// not safe to) factor.
func (f *factorer) buildGroup(infos []*branchInfo, g factorGroup, env map[string][]string) (CTE, []*Select, bool) {
	depth := g.depth
	lead := infos[g.idxs[0]]

	// Common conjuncts per level: join predicates below depth are common by
	// construction; single-alias conjuncts are common only where every
	// member has a canonically equal one (multiset intersection). The rest
	// defer into the members.
	commonCount := map[string]int{}
	for mi, idx := range g.idxs {
		counts := map[string]int{}
		for _, c := range infos[idx].conjs {
			if c.level < depth {
				counts[c.canon]++
			}
		}
		if mi == 0 {
			commonCount = counts
			continue
		}
		for canon, have := range commonCount {
			if counts[canon] < have {
				commonCount[canon] = counts[canon]
			}
		}
	}
	// The prefix must be worth a materialization: at least one join level,
	// or a filtered single-table scan shared by every member.
	nCommon := 0
	for _, c := range commonCount {
		nCommon += c
	}
	if depth < 2 && nCommon == 0 {
		return CTE{}, nil, false
	}

	// Split each member's conjuncts into lifted (common prefix), deferred
	// (kept in the member, on prefix columns), and suffix.
	type memberPlan struct {
		info     *branchInfo
		deferred []Expr // prefix-level conjuncts kept in the member
		suffix   []Expr
	}
	plans := make([]memberPlan, len(g.idxs))
	var commonExprs []Expr // from the lead member, original order
	for mi, idx := range g.idxs {
		info := infos[idx]
		taken := map[string]int{}
		p := memberPlan{info: info}
		for _, c := range info.conjs {
			switch {
			case c.level >= depth:
				p.suffix = append(p.suffix, c.expr)
			case taken[c.canon] < commonCount[c.canon]:
				taken[c.canon]++
				if mi == 0 {
					commonExprs = append(commonExprs, c.expr)
				}
			default:
				p.deferred = append(p.deferred, c.expr)
			}
		}
		plans[mi] = p
	}

	// Columns of the prefix that survive into members: referenced by any
	// deferred conjunct, suffix conjunct, or projection. Stars over prefix
	// aliases need the source's full layout.
	type pcol struct {
		pos int
		col string
	}
	needSet := map[pcol]bool{}
	var need func(info *branchInfo, e Expr)
	need = func(info *branchInfo, e Expr) {
		switch e := e.(type) {
		case ColRef:
			if p, ok := info.aliasPos[e.Table]; ok && p < depth {
				needSet[pcol{p, e.Column}] = true
			}
		case Cmp:
			need(info, e.Left)
			need(info, e.Right)
		case In:
			need(info, e.Left)
		case IsNull:
			need(info, e.Left)
		case And:
			for _, k := range e.Kids {
				need(info, k)
			}
		case Or:
			for _, k := range e.Kids {
				need(info, k)
			}
		}
	}
	starCols := map[int][]string{} // prefix position -> full layout
	for mi, idx := range g.idxs {
		info := infos[idx]
		for _, e := range plans[mi].deferred {
			need(info, e)
		}
		for _, e := range plans[mi].suffix {
			need(info, e)
		}
		for _, item := range info.sel.Cols {
			if item.Star {
				p, ok := info.aliasPos[item.StarTable]
				if !ok || p >= depth {
					continue
				}
				cols := f.sourceCols(info.sources[p], env)
				if cols == nil {
					return CTE{}, nil, false // unknown layout: cannot expand
				}
				starCols[p] = cols
				for _, c := range cols {
					needSet[pcol{p, c}] = true
				}
				continue
			}
			if cr, ok := item.Expr.(ColRef); ok {
				need(info, cr)
			}
		}
	}
	needed := make([]pcol, 0, len(needSet))
	for pc := range needSet {
		needed = append(needed, pc)
	}
	sort.Slice(needed, func(i, j int) bool {
		if needed[i].pos != needed[j].pos {
			return needed[i].pos < needed[j].pos
		}
		return needed[i].col < needed[j].col
	})
	pname := func(pos int, col string) string { return "p" + itoa(pos) + "_" + col }

	cteName := f.newName()
	body := &Select{From: lead.sel.From[:depth:depth], Where: Conj(commonExprs...)}
	for _, pc := range needed {
		body.Cols = append(body.Cols, SelectItem{
			Expr: ColRef{Table: lead.aliases[pc.pos], Column: pc.col},
			As:   pname(pc.pos, pc.col),
		})
	}
	if len(body.Cols) == 0 {
		// No member reads a prefix column; project a constant so the CTE is
		// well formed while its cardinality still multiplies the members.
		body.Cols = []SelectItem{{Expr: IntLit(1), As: "p_one"}}
	}
	cte := CTE{Name: cteName, Body: SingleSelect(body)}

	// Rewrite each member over the CTE.
	rewritten := make([]*Select, len(g.idxs))
	for mi := range g.idxs {
		info := plans[mi].info
		var rw func(Expr) Expr
		rw = func(e Expr) Expr {
			switch e := e.(type) {
			case ColRef:
				if p, ok := info.aliasPos[e.Table]; ok && p < depth {
					return ColRef{Table: cteName, Column: pname(p, e.Column)}
				}
				return e
			case Cmp:
				return Cmp{Op: e.Op, Left: rw(e.Left), Right: rw(e.Right)}
			case In:
				return In{Left: rw(e.Left), List: e.List}
			case IsNull:
				return IsNull{Left: rw(e.Left)}
			case And:
				kids := make([]Expr, len(e.Kids))
				for i, k := range e.Kids {
					kids[i] = rw(k)
				}
				return And{Kids: kids}
			case Or:
				kids := make([]Expr, len(e.Kids))
				for i, k := range e.Kids {
					kids[i] = rw(k)
				}
				return Or{Kids: kids}
			default:
				return e
			}
		}
		ns := &Select{From: append([]FromItem{{Source: cteName}}, info.sel.From[depth:]...)}
		var where []Expr
		for _, e := range plans[mi].deferred {
			where = append(where, rw(e))
		}
		for _, e := range plans[mi].suffix {
			where = append(where, rw(e))
		}
		ns.Where = Conj(where...)
		for _, item := range info.sel.Cols {
			if item.Star {
				if p, ok := info.aliasPos[item.StarTable]; ok && p < depth {
					for _, c := range starCols[p] {
						ns.Cols = append(ns.Cols, SelectItem{Expr: ColRef{Table: cteName, Column: pname(p, c)}, As: c})
					}
					continue
				}
				ns.Cols = append(ns.Cols, item)
				continue
			}
			if cr, ok := item.Expr.(ColRef); ok {
				if p, inPrefix := info.aliasPos[cr.Table]; inPrefix && p < depth {
					as := item.As
					if as == "" {
						as = cr.Column
					}
					ns.Cols = append(ns.Cols, SelectItem{Expr: rw(cr), As: as})
					continue
				}
			}
			ns.Cols = append(ns.Cols, item)
		}
		rewritten[mi] = ns
	}
	return cte, rewritten, true
}
