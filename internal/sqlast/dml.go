package sqlast

import (
	"fmt"
	"sort"
	"strings"

	"xmlsql/internal/relational"
)

// DMLStmt is one data-modification statement of an update batch: the XML
// update path plans mutations into a sequence of these, which a backend
// applies atomically (internal/update, backend.DML). Values are rendered as
// literals — update batches are planned, not prepared, so there is no bind
// parameter surface.
type DMLStmt interface {
	// DMLTable names the single table the statement touches.
	DMLTable() string
	// SQLFor renders the statement for a dialect, without a trailing
	// semicolon.
	SQLFor(d *Dialect) string
}

// InsertStmt inserts one or more rows into a table.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Lit
}

// DMLTable implements DMLStmt.
func (s *InsertStmt) DMLTable() string { return s.Table }

// SQLFor implements DMLStmt.
func (s *InsertStmt) SQLFor(d *Dialect) string {
	d = d.or()
	var b strings.Builder
	b.WriteString(d.kw("insert into "))
	b.WriteString(d.Ident(s.Table))
	b.WriteString(" (")
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.Ident(c))
	}
	b.WriteString(d.kw(") values "))
	for i, r := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, v := range r {
			if j > 0 {
				b.WriteString(", ")
			}
			v.render(&b, d)
		}
		b.WriteByte(')')
	}
	return b.String()
}

// DeleteStmt removes the rows matching Where from a table. A nil Where
// deletes nothing (rendered as the dialect's FALSE), never everything: the
// update path always scopes deletes by id, and an accidentally empty
// predicate must not truncate a relation.
type DeleteStmt struct {
	Table string
	Where Expr
}

// DMLTable implements DMLStmt.
func (s *DeleteStmt) DMLTable() string { return s.Table }

// SQLFor implements DMLStmt.
func (s *DeleteStmt) SQLFor(d *Dialect) string {
	d = d.or()
	var b strings.Builder
	b.WriteString(d.kw("delete from "))
	b.WriteString(d.Ident(s.Table))
	b.WriteString(d.kw(" where "))
	if s.Where == nil {
		b.WriteString(d.falseSQL())
	} else {
		s.Where.render(&b, d)
	}
	return b.String()
}

// Assign is one SET column = literal assignment of an UpdateStmt.
type Assign struct {
	Column string
	Value  Lit
}

// UpdateStmt rewrites columns of the rows matching Where. Like DeleteStmt, a
// nil Where matches nothing.
type UpdateStmt struct {
	Table string
	Set   []Assign
	Where Expr
}

// DMLTable implements DMLStmt.
func (s *UpdateStmt) DMLTable() string { return s.Table }

// SQLFor implements DMLStmt.
func (s *UpdateStmt) SQLFor(d *Dialect) string {
	d = d.or()
	var b strings.Builder
	b.WriteString(d.kw("update "))
	b.WriteString(d.Ident(s.Table))
	b.WriteString(d.kw(" set "))
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.Ident(a.Column))
		b.WriteString(" = ")
		a.Value.render(&b, d)
	}
	b.WriteString(d.kw(" where "))
	if s.Where == nil {
		b.WriteString(d.falseSQL())
	} else {
		s.Where.render(&b, d)
	}
	return b.String()
}

// DMLString renders a statement in the default (paper-style) dialect.
func DMLString(s DMLStmt) string { return s.SQLFor(DialectDefault) }

// EvalRowPredicate evaluates a WHERE expression against a single row of the
// given schema, resolving column references by name (any table qualifier is
// ignored — DML statements scope a single table). It supports the expression
// forms DML planning emits: conjunction, disjunction, =/<> comparisons,
// IN lists, and IS NULL, over column references and literals. Comparisons
// follow SQL semantics: a NULL operand never matches.
func EvalRowPredicate(ts *relational.TableSchema, e Expr, row relational.Row) (bool, error) {
	if e == nil {
		return false, nil
	}
	operand := func(x Expr) (relational.Value, error) {
		switch v := x.(type) {
		case Lit:
			return v.Value, nil
		case ColRef:
			ci := ts.ColumnIndex(v.Column)
			if ci < 0 {
				return relational.Value{}, fmt.Errorf("sqlast: table %s has no column %s", ts.Name, v.Column)
			}
			return row[ci], nil
		}
		return relational.Value{}, fmt.Errorf("sqlast: unsupported DML operand %T", x)
	}
	switch v := e.(type) {
	case And:
		for _, k := range v.Kids {
			ok, err := EvalRowPredicate(ts, k, row)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case Or:
		for _, k := range v.Kids {
			ok, err := EvalRowPredicate(ts, k, row)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	case Cmp:
		l, err := operand(v.Left)
		if err != nil {
			return false, err
		}
		r, err := operand(v.Right)
		if err != nil {
			return false, err
		}
		if l.IsNull() || r.IsNull() {
			return false, nil
		}
		if v.Op == OpNe {
			return !l.Equal(r), nil
		}
		return l.Equal(r), nil
	case In:
		l, err := operand(v.Left)
		if err != nil {
			return false, err
		}
		for _, lit := range v.List {
			if l.Equal(lit.Value) {
				return true, nil
			}
		}
		return false, nil
	case IsNull:
		l, err := operand(v.Left)
		if err != nil {
			return false, err
		}
		return l.IsNull(), nil
	}
	return false, fmt.Errorf("sqlast: unsupported DML predicate %T", e)
}

// Relations lists the base tables a query reads: every FROM source of every
// branch and CTE body, excluding the CTE names themselves. Sorted and
// deduplicated. The planner tags plan-cache entries with this set so
// invalidation after a write can be scoped to the touched relations.
func Relations(q *Query) []string {
	if q == nil {
		return nil
	}
	ctes := map[string]bool{}
	for _, c := range q.With {
		ctes[c.Name] = true
	}
	seen := map[string]bool{}
	var visit func(qq *Query)
	visit = func(qq *Query) {
		for _, c := range qq.With {
			visit(c.Body)
		}
		for _, s := range qq.Selects {
			for _, f := range s.From {
				if !ctes[f.Source] {
					seen[f.Source] = true
				}
			}
		}
	}
	visit(q)
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
