// Package sqlast defines the abstract syntax of the SQL fragment produced by
// XML-to-SQL query translation, together with a renderer that prints the
// paper-style SQL text.
//
// The fragment is exactly what the translation algorithms of the paper emit:
// SELECT-FROM-WHERE blocks with conjunctions, disjunctions, equality/IN
// predicates, UNION ALL, and WITH [RECURSIVE] common table expressions.
package sqlast

import (
	"fmt"
	"strings"

	"xmlsql/internal/relational"
)

// Expr is a boolean or scalar expression node.
type Expr interface {
	render(b *strings.Builder, d *Dialect)
	exprNode()
}

// ColRef references a column of a FROM-clause item by alias.
type ColRef struct {
	Table  string // the alias of the FROM item
	Column string
}

func (ColRef) exprNode() {}

func (c ColRef) render(b *strings.Builder, d *Dialect) {
	if c.Table != "" {
		b.WriteString(d.Ident(c.Table))
		b.WriteByte('.')
	}
	b.WriteString(d.Ident(c.Column))
}

// Lit is a literal value.
type Lit struct {
	Value relational.Value
}

func (Lit) exprNode() {}

func (l Lit) render(b *strings.Builder, d *Dialect) { b.WriteString(d.Literal(l.Value)) }

// IntLit builds an integer literal expression.
func IntLit(v int64) Lit { return Lit{Value: relational.Int(v)} }

// StringLit builds a string literal expression.
func StringLit(v string) Lit { return Lit{Value: relational.String(v)} }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
)

func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(o))
	}
}

// Cmp is a binary comparison.
type Cmp struct {
	Op    CmpOp
	Left  Expr
	Right Expr
}

func (Cmp) exprNode() {}

func (c Cmp) render(b *strings.Builder, d *Dialect) {
	c.Left.render(b, d)
	b.WriteByte(' ')
	b.WriteString(c.Op.String())
	b.WriteByte(' ')
	c.Right.render(b, d)
}

// Eq builds Left = Right.
func Eq(l, r Expr) Cmp { return Cmp{Op: OpEq, Left: l, Right: r} }

// IsNull tests whether Left is SQL NULL. The translators anchor paths at the
// schema root with "root.parentid IS NULL", which matters for
// schema-oblivious (Edge) storage where all nodes share one relation.
type IsNull struct {
	Left Expr
}

func (IsNull) exprNode() {}

func (i IsNull) render(b *strings.Builder, d *Dialect) {
	i.Left.render(b, d)
	b.WriteString(" IS NULL")
}

// In tests membership of Left in a literal list.
type In struct {
	Left Expr
	List []Lit
}

func (In) exprNode() {}

func (i In) render(b *strings.Builder, d *Dialect) {
	i.Left.render(b, d)
	b.WriteString(" IN (")
	for j, l := range i.List {
		if j > 0 {
			b.WriteString(", ")
		}
		l.render(b, d)
	}
	b.WriteByte(')')
}

// And is an n-ary conjunction. An empty And is TRUE.
type And struct {
	Kids []Expr
}

func (And) exprNode() {}

func (a And) render(b *strings.Builder, d *Dialect) {
	if len(a.Kids) == 0 {
		b.WriteString(d.trueSQL())
		return
	}
	for i, k := range a.Kids {
		if i > 0 {
			b.WriteString(" AND ")
		}
		renderChild(b, k, precAnd, d)
	}
}

// Or is an n-ary disjunction. An empty Or is FALSE.
type Or struct {
	Kids []Expr
}

func (Or) exprNode() {}

func (o Or) render(b *strings.Builder, d *Dialect) {
	if len(o.Kids) == 0 {
		b.WriteString(d.falseSQL())
		return
	}
	for i, k := range o.Kids {
		if i > 0 {
			b.WriteString(" OR ")
		}
		renderChild(b, k, precOr, d)
	}
}

const (
	precOr = iota
	precAnd
	precAtom
)

func prec(e Expr) int {
	switch e.(type) {
	case Or:
		return precOr
	case And:
		return precAnd
	default:
		return precAtom
	}
}

func renderChild(b *strings.Builder, e Expr, parent int, d *Dialect) {
	if prec(e) < parent {
		b.WriteByte('(')
		e.render(b, d)
		b.WriteByte(')')
		return
	}
	e.render(b, d)
}

// Conj builds a conjunction, flattening nested Ands and dropping nils. A
// single child is returned unwrapped; zero children yield nil (TRUE).
func Conj(kids ...Expr) Expr {
	var flat []Expr
	for _, k := range kids {
		switch k := k.(type) {
		case nil:
			continue
		case And:
			flat = append(flat, k.Kids...)
		default:
			flat = append(flat, k)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	return And{Kids: flat}
}

// Disj builds a disjunction, flattening nested Ors and dropping nils (a nil
// disjunct is TRUE, making the whole disjunction TRUE, so Disj returns nil).
func Disj(kids ...Expr) Expr {
	var flat []Expr
	for _, k := range kids {
		switch k := k.(type) {
		case nil:
			return nil // TRUE disjunct
		case Or:
			flat = append(flat, k.Kids...)
		default:
			flat = append(flat, k)
		}
	}
	switch len(flat) {
	case 0:
		return Or{} // FALSE
	case 1:
		return flat[0]
	}
	return Or{Kids: flat}
}

// SelectItem is one projection of a SELECT clause: either a single expression
// (optionally renamed) or a whole-row star "alias.*".
type SelectItem struct {
	// Star selects every column of the FROM item with alias StarTable.
	Star      bool
	StarTable string
	Expr      Expr
	As        string
}

// Col is shorthand for a plain column projection.
func Col(table, column string) SelectItem {
	return SelectItem{Expr: ColRef{Table: table, Column: column}}
}

// Star is shorthand for an "alias.*" projection.
func Star(table string) SelectItem { return SelectItem{Star: true, StarTable: table} }

func (s SelectItem) render(b *strings.Builder, d *Dialect) {
	if s.Star {
		b.WriteString(d.Ident(s.StarTable))
		b.WriteString(".*")
		return
	}
	s.Expr.render(b, d)
	if s.As != "" {
		b.WriteString(" AS ")
		b.WriteString(d.Ident(s.As))
	}
}

// FromItem names a table or CTE and binds an alias to it.
type FromItem struct {
	Source string // base table or CTE name
	Alias  string
}

func (f FromItem) render(b *strings.Builder, d *Dialect) {
	b.WriteString(d.Ident(f.Source))
	if f.Alias != "" && f.Alias != f.Source {
		b.WriteByte(' ')
		b.WriteString(d.Ident(f.Alias))
	}
}

// From is shorthand for a FROM item.
func From(source, alias string) FromItem { return FromItem{Source: source, Alias: alias} }

// Select is a single SELECT-FROM-WHERE block.
type Select struct {
	Cols  []SelectItem
	From  []FromItem
	Where Expr // nil means no WHERE clause
}

// CTE is one WITH-clause definition. A recursive CTE's body may reference
// Name in its FROM items.
type CTE struct {
	Name      string
	Recursive bool
	Body      *Query
}

// Query is the top-level statement: optional CTEs and a UNION ALL of
// SELECT blocks.
type Query struct {
	With    []CTE
	Selects []*Select
}

// SingleSelect wraps one Select into a Query.
func SingleSelect(s *Select) *Query { return &Query{Selects: []*Select{s}} }

// Union concatenates the branches of several queries into one UNION ALL
// query, merging their WITH lists.
func Union(qs ...*Query) *Query {
	out := &Query{}
	for _, q := range qs {
		out.With = append(out.With, q.With...)
		out.Selects = append(out.Selects, q.Selects...)
	}
	return out
}
