package sqlast

import (
	"sort"
	"strings"
)

// CanonExpr renders an expression into a canonical string for structural
// comparison: symmetric comparisons sort their operands, IN lists and
// AND/OR children are sorted, and every alias is passed through rename (nil
// means identity). Two expressions with equal canonical strings select the
// same rows on any instance, which is what the shared-work rewrite
// (FactorUnions) and the engine's subplan memo key on.
func CanonExpr(e Expr, rename func(alias string) string) string {
	var b strings.Builder
	canonInto(&b, e, rename)
	return b.String()
}

func canonInto(b *strings.Builder, e Expr, rename func(string) string) {
	switch e := e.(type) {
	case nil:
		b.WriteString("true")
	case ColRef:
		t := e.Table
		if rename != nil {
			t = rename(t)
		}
		b.WriteString(t)
		b.WriteByte('.')
		b.WriteString(e.Column)
	case Lit:
		b.WriteString("lit:")
		b.WriteString(e.Value.Key())
	case Cmp:
		// = and <> are symmetric, so the operand order is not significant.
		l := CanonExpr(e.Left, rename)
		r := CanonExpr(e.Right, rename)
		if r < l {
			l, r = r, l
		}
		b.WriteString(e.Op.String())
		b.WriteByte('(')
		b.WriteString(l)
		b.WriteByte(',')
		b.WriteString(r)
		b.WriteByte(')')
	case IsNull:
		b.WriteString("isnull(")
		canonInto(b, e.Left, rename)
		b.WriteByte(')')
	case In:
		b.WriteString("in(")
		canonInto(b, e.Left, rename)
		b.WriteByte(';')
		keys := make([]string, len(e.List))
		for i, l := range e.List {
			keys[i] = l.Value.Key()
		}
		sort.Strings(keys)
		b.WriteString(strings.Join(keys, ","))
		b.WriteByte(')')
	case And:
		canonKids(b, "and", e.Kids, rename)
	case Or:
		canonKids(b, "or", e.Kids, rename)
	}
}

func canonKids(b *strings.Builder, op string, kids []Expr, rename func(string) string) {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = CanonExpr(k, rename)
	}
	sort.Strings(parts)
	b.WriteString(op)
	b.WriteByte('(')
	b.WriteString(strings.Join(parts, ","))
	b.WriteByte(')')
}

// Conjuncts flattens an expression into its top-level AND conjuncts (nil
// yields none).
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(And); ok {
		var out []Expr
		for _, k := range a.Kids {
			out = append(out, Conjuncts(k)...)
		}
		return out
	}
	return []Expr{e}
}

// exprAliasSet collects the FROM aliases an expression references into acc.
func exprAliasSet(e Expr, acc map[string]bool) map[string]bool {
	switch e := e.(type) {
	case ColRef:
		acc[e.Table] = true
	case Cmp:
		exprAliasSet(e.Left, acc)
		exprAliasSet(e.Right, acc)
	case In:
		exprAliasSet(e.Left, acc)
	case IsNull:
		exprAliasSet(e.Left, acc)
	case And:
		for _, k := range e.Kids {
			exprAliasSet(k, acc)
		}
	case Or:
		for _, k := range e.Kids {
			exprAliasSet(k, acc)
		}
	case Lit:
	}
	return acc
}
