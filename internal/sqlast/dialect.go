package sqlast

import (
	"fmt"
	"strconv"
	"strings"

	"xmlsql/internal/relational"
)

// Dialect describes how the sqlast fragment is rendered as SQL text for a
// concrete relational backend: identifier quoting, keyword case, bind
// placeholder style, boolean-constant spelling, and the column type names
// used by generated DDL.
//
// DialectDefault reproduces the paper's presentation style (lowercase
// clause keywords, bare identifiers) and is what Query.SQL emits; the
// SQLite and Postgres dialects produce text accepted verbatim by those
// engines (and by the in-repo fake driver, which parses both).
type Dialect struct {
	name string
	// quoteIdents wraps every identifier in ANSI double quotes.
	quoteIdents bool
	// upperKeywords renders clause keywords in upper case.
	upperKeywords bool
	// dollarPlaceholders numbers bind parameters $1, $2, … (Postgres)
	// instead of positional ? (SQLite and database/sql's default).
	dollarPlaceholders bool
	// boolAsCmp spells the boolean constants as the portable comparisons
	// 1=1 / 0=1 instead of the keywords TRUE / FALSE.
	boolAsCmp bool
	// intType and textType are the DDL column types for the two value
	// kinds the shredded relations use.
	intType, textType string
}

// The built-in dialects.
var (
	// DialectDefault is the paper-style rendering used throughout the
	// repo's documentation and golden outputs.
	DialectDefault = &Dialect{
		name:    "default",
		intType: "INTEGER", textType: "VARCHAR",
	}
	// DialectSQLite renders SQL accepted by SQLite: quoted identifiers,
	// ? placeholders, TEXT values, and portable 1=1/0=1 boolean
	// constants (TRUE/FALSE only exist in newer SQLite versions).
	DialectSQLite = &Dialect{
		name:        "sqlite",
		quoteIdents: true, upperKeywords: true, boolAsCmp: true,
		intType: "INTEGER", textType: "TEXT",
	}
	// DialectPostgres renders SQL accepted by PostgreSQL: quoted
	// identifiers and numbered $N placeholders.
	DialectPostgres = &Dialect{
		name:        "postgres",
		quoteIdents: true, upperKeywords: true, dollarPlaceholders: true,
		intType: "BIGINT", textType: "TEXT",
	}
)

// Dialects returns the built-in dialects in a deterministic order.
func Dialects() []*Dialect {
	return []*Dialect{DialectDefault, DialectSQLite, DialectPostgres}
}

// DialectByName resolves a dialect by its Name.
func DialectByName(name string) (*Dialect, error) {
	for _, d := range Dialects() {
		if d.name == name {
			return d, nil
		}
	}
	names := make([]string, 0, 3)
	for _, d := range Dialects() {
		names = append(names, d.name)
	}
	return nil, fmt.Errorf("sqlast: unknown dialect %q (want %s)", name, strings.Join(names, ", "))
}

// Name returns the dialect's registry name ("default", "sqlite",
// "postgres").
func (d *Dialect) Name() string { return d.name }

// or returns the receiver, defaulting a nil dialect to DialectDefault so
// render paths never have to nil-check.
func (d *Dialect) or() *Dialect {
	if d == nil {
		return DialectDefault
	}
	return d
}

// Ident renders an identifier (table, column, alias, or CTE name).
func (d *Dialect) Ident(s string) string {
	if !d.quoteIdents {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// kw renders a clause keyword in the dialect's case.
func (d *Dialect) kw(s string) string {
	if d.upperKeywords {
		return strings.ToUpper(s)
	}
	return s
}

// Placeholder renders the i-th (1-based) bind parameter.
func (d *Dialect) Placeholder(i int) string {
	if d.dollarPlaceholders {
		return "$" + strconv.Itoa(i)
	}
	return "?"
}

// trueSQL and falseSQL spell the boolean constants produced by empty
// conjunctions and disjunctions.
func (d *Dialect) trueSQL() string {
	if d.boolAsCmp {
		return "1=1"
	}
	return "TRUE"
}

func (d *Dialect) falseSQL() string {
	if d.boolAsCmp {
		return "0=1"
	}
	return "FALSE"
}

// Literal renders a value as a SQL literal. Unlike Value.String (the
// paper-style default), non-default dialects escape embedded single
// quotes so the text is safe to feed to a real engine.
func (d *Dialect) Literal(v relational.Value) string {
	if v.Kind() == relational.KindString && d != DialectDefault {
		return "'" + strings.ReplaceAll(v.AsString(), "'", "''") + "'"
	}
	return v.String()
}

// TypeName returns the DDL column type for a value kind.
func (d *Dialect) TypeName(k relational.Kind) (string, error) {
	switch k {
	case relational.KindInt:
		return d.intType, nil
	case relational.KindString:
		return d.textType, nil
	}
	return "", fmt.Errorf("sqlast: dialect %s: no column type for kind %v", d.name, k)
}
