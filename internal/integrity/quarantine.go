package integrity

import (
	"context"
	"fmt"
	"sort"

	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
)

// QuarantineSuffix names the shadow relation violating tuples are moved
// into: relation R's quarantined tuples live in R + QuarantineSuffix.
const QuarantineSuffix = "_quarantine"

// Quarantine moves every tuple the report pins a violation on out of its
// relation and into a shadow relation with the same columns, creating the
// shadow table on first use. It returns how many tuples moved.
//
// Quarantining an orphan subtree's head leaves its descendants dangling, so
// repair is a fixpoint: re-audit and re-quarantine until the report comes
// back clean (QuarantineLoop does exactly that). Quarantine mutates the
// in-memory store directly; for database backends, use the report to drive
// repairs in the owning system instead.
func Quarantine(store *relational.Store, rep *Report) (int, error) {
	byRel := map[string]map[int64]bool{}
	for _, v := range rep.Violations {
		if v.Relation == "" {
			continue
		}
		if byRel[v.Relation] == nil {
			byRel[v.Relation] = map[int64]bool{}
		}
		byRel[v.Relation][v.TupleID] = true
	}
	rels := make([]string, 0, len(byRel))
	for rel := range byRel {
		rels = append(rels, rel)
	}
	sort.Strings(rels)

	moved := 0
	for _, rel := range rels {
		t := store.Table(rel)
		if t == nil {
			continue
		}
		shadowName := rel + QuarantineSuffix
		shadow := store.Table(shadowName)
		if shadow == nil {
			ts := t.Schema().Clone()
			ts.Name = shadowName
			var err error
			if shadow, err = store.CreateTable(ts); err != nil {
				return moved, fmt.Errorf("integrity: creating %s: %w", shadowName, err)
			}
		}
		ids := byRel[rel]
		idIdx := t.Schema().ColumnIndex(schema.IDColumn)
		if idIdx < 0 {
			continue
		}
		hit := func(r relational.Row) bool {
			return !r[idIdx].IsNull() && r[idIdx].Kind() == relational.KindInt && ids[r[idIdx].AsInt()]
		}
		for _, r := range t.Rows() {
			if hit(r) {
				if err := shadow.Insert(r); err != nil {
					return moved, fmt.Errorf("integrity: quarantining %s.id=%s: %w", rel, r[idIdx], err)
				}
			}
		}
		moved += t.DeleteWhere(hit)
	}
	return moved, nil
}

// QuarantineLoop audits the store and quarantines violating tuples until
// the audit comes back clean or maxRounds is exhausted (quarantining a
// subtree head exposes its children as new orphans, so repair converges by
// iteration). It returns the final report and the total tuples moved.
func QuarantineLoop(store *relational.Store, s *schema.Schema, maxRounds int) (*Report, int, error) {
	if maxRounds <= 0 {
		maxRounds = 10
	}
	moved := 0
	var rep *Report
	for round := 0; round < maxRounds; round++ {
		var err error
		rep, err = Audit(context.Background(), StoreSource(store), s)
		if err != nil {
			return nil, moved, err
		}
		if rep.Clean() {
			return rep, moved, nil
		}
		n, err := Quarantine(store, rep)
		moved += n
		if err != nil {
			return rep, moved, err
		}
		if n == 0 {
			break // nothing quarantinable (e.g. violations without tuple ids)
		}
	}
	return rep, moved, nil
}
