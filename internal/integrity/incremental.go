package integrity

import (
	"context"
	"fmt"
	"sort"
	"time"

	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// Probe fetches tuples by key for the incremental audit. Rows must be
// returned in TableSchema column order (id, parentid, condition columns,
// value columns), exactly as the full audit's per-relation SELECT produces
// them. A relation with no matches returns an empty slice, not an error.
//
// StoreProbe answers from a relational.Store in O(1) per key via the
// primary-key and parentid indexes; NewSourceProbe issues id IN (...)
// SELECTs through any audit Source. The update path layers its staged
// effects over either (so a batch can be audited before it applies).
type Probe interface {
	FetchByID(ctx context.Context, rel string, ids []int64) ([]relational.Row, error)
	FetchByParent(ctx context.Context, rel string, parents []int64) ([]relational.Row, error)
}

// TupleRef names one tuple of the shredded instance.
type TupleRef struct {
	Rel string
	ID  int64
}

// Touched is a write batch's footprint: the tuples it inserted or rewrote
// (live after the batch) and the tuples it removed. AuditIncremental
// re-checks exactly the P1/P2/P3 neighborhood of this set.
type Touched struct {
	Written []TupleRef
	Deleted []TupleRef
}

// Empty reports whether the batch touched nothing.
func (t Touched) Empty() bool { return len(t.Written) == 0 && len(t.Deleted) == 0 }

// Relations returns the sorted set of relations the batch touched.
func (t Touched) Relations() []string {
	seen := map[string]bool{}
	for _, r := range t.Written {
		seen[r.Rel] = true
	}
	for _, r := range t.Deleted {
		seen[r.Rel] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// AuditIncremental verifies P1–P3 on the neighborhood of a write batch
// instead of scanning the whole instance. The neighborhood is:
//
//   - every touched tuple (written ids probed in every relation, so
//     duplicate ids and misfiled tuples surface exactly as in a full audit);
//   - the full ancestor chain of every loaded tuple up to its document root
//     (placement is inherited downward, so a tuple's position — and hence P1
//     — can only be judged under its placed parent);
//   - one level of children below every touched or deleted id (a delete must
//     not strand children; an insert must not collide with them).
//
// The structural pass is the full auditor's, run over the loaded subset: a
// loaded tuple whose parent id resolves to nothing is dangling (every loaded
// tuple's parent was probed), unreachable loaded tuples form parentid
// cycles, and condition columns must select exactly one schema position
// under the placed parent. Tuples outside the neighborhood are untouched by
// the batch, so their placement cannot have changed — which is what makes
// the incremental verdict equal to the full audit's after a valid batch
// (the randomized differential test in internal/update holds them equal).
func AuditIncremental(ctx context.Context, probe Probe, s *schema.Schema, touched Touched) (*Report, error) {
	return AuditIncrementalOpts(ctx, probe, s, touched, Options{})
}

// AuditIncrementalOpts is AuditIncremental with explicit options.
func AuditIncrementalOpts(ctx context.Context, probe Probe, s *schema.Schema, touched Touched, opts Options) (*Report, error) {
	start := time.Now()
	a, err := newAuditor(s, opts)
	if err != nil {
		return nil, err
	}
	if err := a.loadNeighborhood(ctx, probe, touched); err != nil {
		return nil, err
	}
	if err := a.structural(ctx); err != nil {
		return nil, err
	}
	a.rep.Elapsed = time.Since(start)
	return a.rep, nil
}

// loadNeighborhood is the incremental counterpart of load: instead of one
// SELECT per relation it walks outward from the touched ids — ancestor
// chains via FetchByID, one child level via FetchByParent — and ingests
// every row it finds, building the same structural indexes the full pass
// uses.
func (a *auditor) loadNeighborhood(ctx context.Context, probe Probe, touched Touched) error {
	rels := a.s.Relations()
	sort.Strings(rels)
	tss := make(map[string]*relational.TableSchema, len(rels))
	for _, rel := range rels {
		tss[rel] = a.defs[rel].TableSchema()
	}

	// fetched marks ids already probed across every relation; loaded ids
	// found per relation (so the child sweep does not re-ingest them).
	fetched := map[int64]bool{}
	var frontier []int64
	add := func(id int64) {
		if !fetched[id] {
			fetched[id] = true
			frontier = append(frontier, id)
		}
	}
	for _, r := range touched.Written {
		add(r.ID)
	}
	for _, r := range touched.Deleted {
		add(r.ID)
	}
	touchedIDs := append([]int64(nil), frontier...)

	// Ancestor chains: fetch each frontier id in every relation, then chase
	// the parent ids of whatever was found. Cycles terminate on the fetched
	// set; chains end at NULL-parent roots or at absent parents (dangling,
	// judged by the structural pass).
	for len(frontier) > 0 {
		ids := frontier
		frontier = nil
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, rel := range rels {
			if err := ctx.Err(); err != nil {
				return err
			}
			rows, err := probe.FetchByID(ctx, rel, ids)
			if err != nil {
				return fmt.Errorf("integrity: probing %s by id: %w", rel, err)
			}
			for _, row := range rows {
				a.rep.Tuples++
				a.ingest(rel, tss[rel], row)
				if len(row) > 1 && !row[1].IsNull() && row[1].Kind() == relational.KindInt {
					add(row[1].AsInt())
				}
			}
		}
	}

	// One child level below the touched ids. Children of written tuples must
	// still place under them; children of deleted tuples are dangling. Rows
	// already loaded by id are skipped.
	if len(touchedIDs) > 0 {
		sort.Slice(touchedIDs, func(i, j int) bool { return touchedIDs[i] < touchedIDs[j] })
		for _, rel := range rels {
			if err := ctx.Err(); err != nil {
				return err
			}
			rows, err := probe.FetchByParent(ctx, rel, touchedIDs)
			if err != nil {
				return fmt.Errorf("integrity: probing %s by parentid: %w", rel, err)
			}
			for _, row := range rows {
				if len(row) > 0 && !row[0].IsNull() && row[0].Kind() == relational.KindInt && fetched[row[0].AsInt()] {
					continue
				}
				a.rep.Tuples++
				a.ingest(rel, tss[rel], row)
			}
		}
	}

	for _, ts := range a.byParent {
		sortTups(ts)
	}
	return nil
}

// storeProbe answers probes from a relational.Store using the primary-key
// map and the eager parentid indexes ShredAll builds; missing indexes fall
// back to scans so quarantined or hand-built stores stay auditable.
type storeProbe struct {
	store *relational.Store
}

// StoreProbe adapts a store for incremental audits.
func StoreProbe(store *relational.Store) Probe { return storeProbe{store: store} }

func (p storeProbe) FetchByID(ctx context.Context, rel string, ids []int64) ([]relational.Row, error) {
	t := p.store.Table(rel)
	if t == nil || len(ids) == 0 {
		return nil, nil
	}
	if t.Schema().PrimaryKey != "" {
		var out []relational.Row
		for _, id := range ids {
			if row, ok := t.LookupPK(relational.Int(id)); ok {
				out = append(out, row)
			}
		}
		return out, nil
	}
	return scanWhere(t, 0, ids), nil
}

func (p storeProbe) FetchByParent(ctx context.Context, rel string, parents []int64) ([]relational.Row, error) {
	t := p.store.Table(rel)
	if t == nil || len(parents) == 0 {
		return nil, nil
	}
	pi := t.Schema().ColumnIndex(schema.ParentIDColumn)
	if pi < 0 {
		return nil, nil
	}
	if _, indexed := t.Lookup(schema.ParentIDColumn, relational.Int(parents[0])); indexed {
		var out []relational.Row
		for _, par := range parents {
			rows, _ := t.Lookup(schema.ParentIDColumn, relational.Int(par))
			out = append(out, rows...)
		}
		return out, nil
	}
	return scanWhere(t, pi, parents), nil
}

func scanWhere(t *relational.Table, col int, keys []int64) []relational.Row {
	want := make(map[int64]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	var out []relational.Row
	for _, row := range t.Rows() {
		if col < len(row) && !row[col].IsNull() && row[col].Kind() == relational.KindInt && want[row[col].AsInt()] {
			out = append(out, row)
		}
	}
	return out
}

// sourceProbe answers probes with id IN (...) SELECTs through an audit
// Source, so incremental audits run against any backend.
type sourceProbe struct {
	src Source
	tss map[string]*relational.TableSchema
}

// NewSourceProbe builds a Probe over a Source for the given mapping.
func NewSourceProbe(src Source, s *schema.Schema) (Probe, error) {
	defs, err := s.DeriveRelations()
	if err != nil {
		return nil, fmt.Errorf("integrity: %w", err)
	}
	tss := make(map[string]*relational.TableSchema, len(defs))
	for rel, def := range defs {
		tss[rel] = def.TableSchema()
	}
	return sourceProbe{src: src, tss: tss}, nil
}

func (p sourceProbe) fetch(ctx context.Context, rel, keyCol string, keys []int64) ([]relational.Row, error) {
	ts, ok := p.tss[rel]
	if !ok || len(keys) == 0 {
		return nil, nil
	}
	list := make([]sqlast.Lit, len(keys))
	for i, k := range keys {
		list[i] = sqlast.IntLit(k)
	}
	sel := &sqlast.Select{
		From:  []sqlast.FromItem{sqlast.From(rel, rel)},
		Where: sqlast.In{Left: sqlast.ColRef{Table: rel, Column: keyCol}, List: list},
	}
	for _, c := range ts.Columns {
		sel.Cols = append(sel.Cols, sqlast.Col(rel, c.Name))
	}
	res, err := p.src.Execute(ctx, sqlast.SingleSelect(sel))
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

func (p sourceProbe) FetchByID(ctx context.Context, rel string, ids []int64) ([]relational.Row, error) {
	return p.fetch(ctx, rel, schema.IDColumn, ids)
}

func (p sourceProbe) FetchByParent(ctx context.Context, rel string, parents []int64) ([]relational.Row, error) {
	return p.fetch(ctx, rel, schema.ParentIDColumn, parents)
}
