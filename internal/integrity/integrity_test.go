package integrity_test

import (
	"context"
	"database/sql"
	"errors"
	"strings"
	"testing"

	"xmlsql/internal/backend"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

func shredded(t *testing.T, s *schema.Schema, doc *xmltree.Document) *relational.Store {
	t.Helper()
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatal(err)
	}
	return store
}

func audit(t *testing.T, s *schema.Schema, store *relational.Store) *integrity.Report {
	t.Helper()
	rep, err := integrity.Audit(context.Background(), integrity.StoreSource(store), s)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// idIdx returns the id-column ordinal of a relation's table.
func idIdx(t *testing.T, store *relational.Store, rel string) int {
	t.Helper()
	tbl := store.Table(rel)
	if tbl == nil {
		t.Fatalf("relation %s missing", rel)
	}
	return tbl.Schema().ColumnIndex(schema.IDColumn)
}

func TestAuditCleanWorkloads(t *testing.T) {
	cases := []struct {
		name string
		s    *schema.Schema
		doc  *xmltree.Document
	}{
		{"xmark", workloads.XMark(), workloads.GenerateXMark(workloads.DefaultXMarkConfig())},
		{"xmarkfull", workloads.XMarkFull(), workloads.GenerateXMarkFull(workloads.DefaultXMarkConfig())},
		{"s1", workloads.S1(), workloads.GenerateS1(25, 1)},
		{"s2", workloads.S2(), workloads.GenerateS2(10, 2)},
		{"s3", workloads.S3(), workloads.GenerateS3(workloads.DefaultS3Config())},
		{"adex", workloads.ADEX(), workloads.GenerateADEX(workloads.DefaultADEXConfig())},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := shredded(t, tc.s, tc.doc)
			rep := audit(t, tc.s, store)
			if !rep.Clean() {
				t.Fatalf("clean instance reported violations:\n%s", rep)
			}
			if rep.Tuples != store.TotalRows() {
				t.Errorf("audited %d tuples, store has %d", rep.Tuples, store.TotalRows())
			}
			if rep.Err() != nil {
				t.Errorf("clean report Err = %v", rep.Err())
			}
		})
	}
}

func TestAuditCleanEdgeMapping(t *testing.T) {
	s := workloads.XMark()
	es, err := shred.EdgeSchemaFor(s)
	if err != nil {
		t.Fatal(err)
	}
	store := shredded(t, es, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	if rep := audit(t, es, store); !rep.Clean() {
		t.Fatalf("edge mapping instance reported violations:\n%s", rep)
	}
}

func TestAuditDetectsDanglingParent(t *testing.T) {
	s := workloads.XMark()
	store := shredded(t, s, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	if err := shred.InjectOrphan(s, store, "InCat", 99999999); err != nil {
		t.Fatal(err)
	}
	rep := audit(t, s, store)
	if rep.Total != 1 {
		t.Fatalf("want exactly 1 violation, got:\n%s", rep)
	}
	v := rep.Violations[0]
	if v.Property != integrity.P2 || v.Relation != "InCat" {
		t.Errorf("violation = %+v, want P2 on InCat", v)
	}
	if !strings.Contains(v.Detail, "resolves to no tuple") {
		t.Errorf("detail = %q", v.Detail)
	}
}

func TestAuditDetectsMisparentedTuple(t *testing.T) {
	s := workloads.XMark()
	store := shredded(t, s, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	// Re-parent one InCat tuple under another InCat tuple: the mapping only
	// places InCat below Item.
	tbl := store.Table("InCat")
	ii := idIdx(t, store, "InCat")
	pi := tbl.Schema().ColumnIndex(schema.ParentIDColumn)
	victim := tbl.Rows()[0][ii].AsInt()
	other := tbl.Rows()[1][ii].AsInt()
	if _, err := tbl.UpdateWhere(
		func(r relational.Row) bool { return r[ii].AsInt() == victim },
		func(r relational.Row) relational.Row { r[pi] = relational.Int(other); return r },
	); err != nil {
		t.Fatal(err)
	}
	rep := audit(t, s, store)
	vs := rep.Find("InCat", victim)
	if len(vs) != 1 || vs[0].Property != integrity.P2 {
		t.Fatalf("want one P2 violation on InCat.id=%d, got:\n%s", victim, rep)
	}
	if !strings.Contains(vs[0].Detail, "never places InCat below InCat") {
		t.Errorf("detail = %q", vs[0].Detail)
	}
}

func TestAuditDetectsOutOfDomainCondition(t *testing.T) {
	s := workloads.S1()
	store := shredded(t, s, workloads.GenerateS1(10, 1))
	// Flip one y tuple's pc from 2 to 3: R3's declared domain is {1, 2}, so
	// this is P3, and the tuple no longer aligns to any child of b, so P1.
	tbl := store.Table("R3")
	ii := idIdx(t, store, "R3")
	ci := tbl.Schema().ColumnIndex("pc")
	var victim int64 = -1
	for _, r := range tbl.Rows() {
		if !r[ci].IsNull() && r[ci].AsInt() == 2 {
			victim = r[ii].AsInt()
			break
		}
	}
	if victim < 0 {
		t.Fatal("no pc=2 tuple found")
	}
	if _, err := tbl.UpdateWhere(
		func(r relational.Row) bool { return r[ii].AsInt() == victim },
		func(r relational.Row) relational.Row { r[ci] = relational.Int(3); return r },
	); err != nil {
		t.Fatal(err)
	}
	rep := audit(t, s, store)
	vs := rep.Find("R3", victim)
	props := map[integrity.Property]bool{}
	for _, v := range vs {
		props[v.Property] = true
	}
	if !props[integrity.P3] || !props[integrity.P1] {
		t.Fatalf("want P3 (domain) and P1 (no position) on R3.id=%d, got:\n%s", victim, rep)
	}
	if rep.Total != len(vs) {
		t.Errorf("violations leaked beyond the corrupted tuple:\n%s", rep)
	}
}

func TestAuditDetectsAmbiguousFlip(t *testing.T) {
	// S2: flipping a t1 tuple's pc from 1 to 2 re-aligns it to the t2
	// position — structurally consistent but now ambiguous with its sibling
	// only if both match; here it simply moves position, so instead flip to
	// a value matching no child (P1) and outside the domain (P3).
	s := workloads.S2()
	store := shredded(t, s, workloads.GenerateS2(5, 1))
	tbl := store.Table("T1")
	ii := idIdx(t, store, "T1")
	ci := tbl.Schema().ColumnIndex("pc")
	victim := tbl.Rows()[0][ii].AsInt()
	if _, err := tbl.UpdateWhere(
		func(r relational.Row) bool { return r[ii].AsInt() == victim },
		func(r relational.Row) relational.Row { r[ci] = relational.Int(9); return r },
	); err != nil {
		t.Fatal(err)
	}
	rep := audit(t, s, store)
	if len(rep.Find("T1", victim)) == 0 {
		t.Fatalf("flipped T1.id=%d not reported:\n%s", victim, rep)
	}
}

func TestAuditDetectsMissingMandatoryLeaf(t *testing.T) {
	s := workloads.XMarkFull()
	store := shredded(t, s, workloads.GenerateXMarkFull(workloads.DefaultXMarkConfig()))
	// Cat.name is stored by every schema node of Cat, so NULLing it is
	// detectable; Item.name is optional in principle (audit must not flag
	// clean NULLs elsewhere).
	tbl := store.Table("Cat")
	ii := idIdx(t, store, "Cat")
	ni := tbl.Schema().ColumnIndex("name")
	victim := tbl.Rows()[0][ii].AsInt()
	if _, err := tbl.UpdateWhere(
		func(r relational.Row) bool { return r[ii].AsInt() == victim },
		func(r relational.Row) relational.Row { r[ni] = relational.Null; return r },
	); err != nil {
		t.Fatal(err)
	}
	rep := audit(t, s, store)
	vs := rep.Find("Cat", victim)
	if len(vs) != 1 || vs[0].Property != integrity.P3 || vs[0].Column != "name" {
		t.Fatalf("want one P3 violation on Cat.id=%d.name, got:\n%s", victim, rep)
	}
}

func TestAuditDetectsDroppedMidTuple(t *testing.T) {
	s := workloads.XMark()
	store := shredded(t, s, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	// Drop one Item: its InCat children dangle. Expect one P2 per child.
	itemTbl := store.Table("Item")
	ii := idIdx(t, store, "Item")
	victim := itemTbl.Rows()[0][ii].AsInt()
	if n := itemTbl.DeleteWhere(func(r relational.Row) bool { return r[ii].AsInt() == victim }); n != 1 {
		t.Fatalf("deleted %d items", n)
	}
	rep := audit(t, s, store)
	if rep.Clean() {
		t.Fatal("dropped Item went undetected")
	}
	for _, v := range rep.Violations {
		if v.Property != integrity.P2 || v.Relation != "InCat" {
			t.Errorf("unexpected violation %s", v)
		}
	}
	if rep.Total != workloads.DefaultXMarkConfig().CategoriesPerItem {
		t.Errorf("want %d dangling children, got %d", workloads.DefaultXMarkConfig().CategoriesPerItem, rep.Total)
	}
}

func TestAuditDetectsParentIDCycle(t *testing.T) {
	s := workloads.S3()
	store := shredded(t, s, workloads.GenerateS3(workloads.DefaultS3Config()))
	// Point a mid-level tuple's parentid at one of its own descendants'
	// ids — every tuple's parent exists, but the loop detaches from the root.
	// Simplest cycle: a tuple adopting itself as parent.
	var rel string
	for _, r := range s.Relations() {
		if r != s.RootNode().Relation && store.Table(r) != nil && store.Table(r).Len() > 0 {
			rel = r
			break
		}
	}
	tbl := store.Table(rel)
	ii := idIdx(t, store, rel)
	pi := tbl.Schema().ColumnIndex(schema.ParentIDColumn)
	victim := tbl.Rows()[0][ii].AsInt()
	if _, err := tbl.UpdateWhere(
		func(r relational.Row) bool { return r[ii].AsInt() == victim },
		func(r relational.Row) relational.Row { r[pi] = relational.Int(victim); return r },
	); err != nil {
		t.Fatal(err)
	}
	rep := audit(t, s, store)
	found := false
	for _, v := range rep.Find(rel, victim) {
		if v.Property == integrity.P2 && strings.Contains(v.Detail, "cycle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("self-cycle on %s.id=%d not reported:\n%s", rel, victim, rep)
	}
}

func TestAuditOverDBBackend(t *testing.T) {
	// The same probes must work through the dialect layer: load a corrupted
	// instance into the fake database/sql driver and audit the DB backend.
	s := workloads.XMark()
	store := shredded(t, s, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	if err := shred.InjectOrphan(s, store, "InCat", 424242); err != nil {
		t.Fatal(err)
	}
	inst := fakedb.New()
	sqldb := sql.OpenDB(inst.Connector())
	db := backend.NewDB(sqldb, sqlast.DialectSQLite)
	defer db.Close()
	if err := db.EnsureSchema(s); err != nil {
		t.Fatal(err)
	}
	if _, err := sqldb.Exec(backend.LoadScript(store, sqlast.DialectSQLite)); err != nil {
		t.Fatal(err)
	}
	rep, err := integrity.Audit(context.Background(), db, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1 || rep.Violations[0].Property != integrity.P2 {
		t.Fatalf("db-backend audit = %s", rep)
	}
	if rep.Tuples != store.TotalRows() {
		t.Errorf("audited %d tuples, want %d", rep.Tuples, store.TotalRows())
	}
}

func TestAuditErrorWrapsReport(t *testing.T) {
	s := workloads.XMark()
	store := shredded(t, s, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	if err := shred.InjectOrphan(s, store, "InCat", 77777); err != nil {
		t.Fatal(err)
	}
	err := shred.CheckLossless(s, store)
	if err == nil {
		t.Fatal("corrupted instance passed CheckLossless")
	}
	var ie *integrity.Error
	if !errors.As(err, &ie) {
		t.Fatalf("CheckLossless error does not wrap *integrity.Error: %v", err)
	}
	if ie.Report.Total != 1 {
		t.Errorf("report total = %d", ie.Report.Total)
	}
}

func TestCheckLosslessReportsAllViolations(t *testing.T) {
	s := workloads.XMark()
	store := shredded(t, s, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	// Three independent corruptions; the old fail-first checker stopped at
	// one, the report must carry all three.
	if err := shred.InjectOrphan(s, store, "InCat", 555001); err != nil {
		t.Fatal(err)
	}
	if err := shred.InjectOrphan(s, store, "Item", 555002); err != nil {
		t.Fatal(err)
	}
	tbl := store.Table("Item")
	ii := idIdx(t, store, "Item")
	ci := tbl.Schema().ColumnIndex("parentcode")
	// The freshly injected Item orphan has a NULL parentcode; corrupt a
	// healthy tuple's parentcode out of domain instead.
	var victim int64 = -1
	for _, r := range tbl.Rows() {
		if !r[ci].IsNull() {
			victim = r[ii].AsInt()
			break
		}
	}
	if _, err := tbl.UpdateWhere(
		func(r relational.Row) bool { return r[ii].AsInt() == victim },
		func(r relational.Row) relational.Row { r[ci] = relational.Int(99); return r },
	); err != nil {
		t.Fatal(err)
	}
	err := shred.CheckLossless(s, store)
	var ie *integrity.Error
	if !errors.As(err, &ie) {
		t.Fatalf("want *integrity.Error, got %v", err)
	}
	rep := ie.Report
	if len(rep.Find("InCat", 0)) != 0 {
		t.Errorf("unexpected violations pinned to id 0:\n%s", rep)
	}
	rels := map[string]bool{}
	for _, v := range rep.Violations {
		rels[v.Relation] = true
	}
	if rep.Total < 3 || !rels["InCat"] || !rels["Item"] {
		t.Fatalf("want >=3 violations spanning InCat and Item, got:\n%s", rep)
	}
}

func TestAuditTruncation(t *testing.T) {
	s := workloads.XMark()
	store := shredded(t, s, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	for i := 0; i < 5; i++ {
		if err := shred.InjectOrphan(s, store, "InCat", int64(900000+i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := integrity.AuditOpts(context.Background(), integrity.StoreSource(store), s, integrity.Options{MaxViolations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || len(rep.Violations) != 2 || rep.Total != 5 {
		t.Fatalf("truncation: shown=%d total=%d truncated=%v", len(rep.Violations), rep.Total, rep.Truncated)
	}
	if !strings.Contains(rep.Err().Error(), "5 violation(s)") {
		t.Errorf("error text = %q", rep.Err().Error())
	}
}

func TestAuditCancelled(t *testing.T) {
	s := workloads.XMark()
	store := shredded(t, s, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := integrity.Audit(ctx, integrity.StoreSource(store), s); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled audit error = %v", err)
	}
}

func TestQuarantineConvergesToClean(t *testing.T) {
	s := workloads.XMark()
	store := shredded(t, s, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	// Drop an Item so its InCat children dangle, and add a free-floating
	// orphan: the loop must quarantine all of them and converge.
	itemTbl := store.Table("Item")
	ii := idIdx(t, store, "Item")
	victim := itemTbl.Rows()[0][ii].AsInt()
	itemTbl.DeleteWhere(func(r relational.Row) bool { return r[ii].AsInt() == victim })
	if err := shred.InjectOrphan(s, store, "InCat", 31337); err != nil {
		t.Fatal(err)
	}
	before := store.Table("InCat").Len()
	rep, moved, err := integrity.QuarantineLoop(store, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("quarantine did not converge:\n%s", rep)
	}
	wantMoved := workloads.DefaultXMarkConfig().CategoriesPerItem + 1
	if moved != wantMoved {
		t.Errorf("moved %d tuples, want %d", moved, wantMoved)
	}
	shadow := store.Table("InCat" + integrity.QuarantineSuffix)
	if shadow == nil || shadow.Len() != wantMoved {
		t.Fatalf("shadow relation holds %v rows, want %d", shadow, wantMoved)
	}
	if store.Table("InCat").Len() != before-wantMoved {
		t.Errorf("InCat len = %d, want %d", store.Table("InCat").Len(), before-wantMoved)
	}
	if err := shred.CheckLossless(s, store); err != nil {
		t.Errorf("post-quarantine instance fails CheckLossless: %v", err)
	}
}

func TestReportString(t *testing.T) {
	s := workloads.XMark()
	store := shredded(t, s, workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	rep := audit(t, s, store)
	if got := rep.String(); !strings.Contains(got, "clean") {
		t.Errorf("clean report string = %q", got)
	}
	if err := shred.InjectOrphan(s, store, "InCat", 11111); err != nil {
		t.Fatal(err)
	}
	rep = audit(t, s, store)
	got := rep.String()
	if !strings.Contains(got, "[P2]") || !strings.Contains(got, "repair:") {
		t.Errorf("dirty report string = %q", got)
	}
	if integrity.P1.Describe() == integrity.P2.Describe() {
		t.Error("property descriptions collapsed")
	}
}
