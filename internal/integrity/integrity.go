// Package integrity audits a shredded relational instance against the
// "lossless from XML" integrity constraint of §3.2 — the precondition that
// makes the pruned translation of §4 sound. The paper's properties:
//
//	P1: every tuple corresponds to exactly one schema-node position — its
//	    condition columns (the materialized edge annotations, "parentcode"
//	    etc.) select exactly one schema child of its parent's position.
//	P2: parent/child referential integrity along the mapping edges — every
//	    non-root tuple's parentid resolves to a tuple of a relation the
//	    mapping places above it, and every tuple is reachable from a
//	    document root.
//	P3: column conformance for LeafNodes(R.C) — condition columns hold only
//	    values the mapping declares (or NULL, when the mapping leaves the
//	    edge unspecified), and value columns hold element text of the
//	    declared kind; a value column stored by every schema node of its
//	    relation must be non-NULL.
//
// Unlike shred.CheckLossless's reconstruction witness, the auditor runs
// against any query Source — the in-memory Store, the fake driver, or a real
// database — using only plain per-relation SELECT probes (the sqlast
// fragment has no aggregates or anti-joins, so the set logic happens
// client-side). Violations stream into a typed Report; offending tuples can
// be quarantined into shadow relations (see Quarantine).
//
// The constraint is a statement about provenance, not a property decidable
// from the instance alone: a duplicated subtree re-inserted with fresh ids
// is indistinguishable from a legitimately repeated element, so a clean
// report means "no violation is detectable", exactly like CheckLossless.
package integrity

import (
	"fmt"
	"strings"
	"time"
)

// Property identifies which lossless-from-XML property a violation breaks.
type Property string

// The §3.2 properties.
const (
	// P1: the tuple's condition columns do not select exactly one schema
	// position under its parent's position.
	P1 Property = "P1"
	// P2: parentid referential integrity or root-reachability is broken.
	P2 Property = "P2"
	// P3: a column holds a value outside its declared domain or kind, or a
	// mandatory leaf value is missing.
	P3 Property = "P3"
)

// Describe returns the property's one-line meaning.
func (p Property) Describe() string {
	switch p {
	case P1:
		return "tuple must align to exactly one schema-node position"
	case P2:
		return "parentid links must form trees rooted at document roots"
	case P3:
		return "columns must conform to the mapping's declared domains"
	default:
		return "unknown property"
	}
}

// Violation is one detected breach of the constraint, pinned to a tuple.
type Violation struct {
	Property Property `json:"property"`
	Relation string   `json:"relation"`
	TupleID  int64    `json:"tuple_id"`
	// Column names the offending column for column-level (P3) violations.
	Column string `json:"column,omitempty"`
	// Detail says what is wrong with this tuple.
	Detail string `json:"detail"`
	// Hint suggests a repair.
	Hint string `json:"hint,omitempty"`
}

// String renders the violation as one report line.
func (v Violation) String() string {
	loc := fmt.Sprintf("%s.id=%d", v.Relation, v.TupleID)
	if v.Column != "" {
		loc += "." + v.Column
	}
	s := fmt.Sprintf("[%s] %s: %s", v.Property, loc, v.Detail)
	if v.Hint != "" {
		s += "; repair: " + v.Hint
	}
	return s
}

// Report is the outcome of one audit run.
type Report struct {
	// Schema is the audited mapping's name.
	Schema string `json:"schema"`
	// Relations and Tuples count what the probes covered.
	Relations int `json:"relations"`
	Tuples    int `json:"tuples"`
	// Violations are the detected breaches, in deterministic discovery
	// order (relations sorted, tuples in id order within a relation's
	// pass). When Total exceeds len(Violations) the list was truncated by
	// Options.MaxViolations.
	Violations []Violation `json:"violations,omitempty"`
	// Total counts every violation found, including truncated ones.
	Total int `json:"total_violations"`
	// Truncated reports that the Violations list was capped.
	Truncated bool `json:"truncated,omitempty"`
	// Elapsed is the audit's wall-clock duration.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Clean reports whether the audit found no violation.
func (r *Report) Clean() bool { return r.Total == 0 }

// Err returns nil for a clean report, or an *Error wrapping it.
func (r *Report) Err() error {
	if r.Clean() {
		return nil
	}
	return &Error{Report: r}
}

// ByProperty returns the recorded violations of one property.
func (r *Report) ByProperty(p Property) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Property == p {
			out = append(out, v)
		}
	}
	return out
}

// Find returns the recorded violations pinned to one tuple.
func (r *Report) Find(relation string, id int64) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Relation == relation && v.TupleID == id {
			out = append(out, v)
		}
	}
	return out
}

// String renders the whole report, one line per violation.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "integrity audit of schema %s: %d tuples across %d relations in %v: ",
		r.Schema, r.Tuples, r.Relations, r.Elapsed.Round(time.Microsecond))
	if r.Clean() {
		b.WriteString("clean")
		return b.String()
	}
	fmt.Fprintf(&b, "%d violation(s)", r.Total)
	if r.Truncated {
		fmt.Fprintf(&b, " (%d shown)", len(r.Violations))
	}
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Error is the error form of an unclean Report, so callers can errors.As
// their way back to the full violation list.
type Error struct {
	Report *Report
}

// maxErrViolations bounds how many violations Error lists inline.
const maxErrViolations = 8

// Error implements error with every violation (up to a cap) on one line each.
func (e *Error) Error() string {
	r := e.Report
	var b strings.Builder
	fmt.Fprintf(&b, "integrity: schema %s: %d violation(s) of the lossless-from-XML constraint", r.Schema, r.Total)
	n := len(r.Violations)
	if n > maxErrViolations {
		n = maxErrViolations
	}
	for _, v := range r.Violations[:n] {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if r.Total > n {
		fmt.Fprintf(&b, "\n  ... and %d more", r.Total-n)
	}
	return b.String()
}

// TrustState is a schema instance's audit disposition, as tracked by the
// serving planner: pruned translations are only provably correct on
// instances satisfying the constraint, so serving keys its plan choice off
// this state.
type TrustState int32

const (
	// TrustUnverified: no audit has run. The optimistic policy serves
	// pruned plans (the shredder establishes the constraint by
	// construction); the strict policy serves safe-mode plans.
	TrustUnverified TrustState = iota
	// TrustVerified: the latest audit came back clean.
	TrustVerified
	// TrustViolated: the latest audit found violations; only the baseline
	// (unpruned) translation is safe to serve.
	TrustViolated
)

func (s TrustState) String() string {
	switch s {
	case TrustVerified:
		return "verified"
	case TrustViolated:
		return "violated"
	default:
		return "unverified"
	}
}
