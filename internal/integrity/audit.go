package integrity

import (
	"context"
	"fmt"
	"sort"
	"time"

	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// Source is anywhere the audit probes can run: backend.Backend satisfies it
// structurally, and StoreSource adapts a bare relational.Store. The auditor
// issues one plain SELECT per relation (the sqlast fragment has no
// aggregates), so any engine that executes translated queries can be
// audited.
type Source interface {
	Execute(ctx context.Context, q *sqlast.Query) (*engine.Result, error)
}

// storeSource runs probes through the in-memory engine.
type storeSource struct{ store *relational.Store }

func (s storeSource) Execute(ctx context.Context, q *sqlast.Query) (*engine.Result, error) {
	return engine.ExecuteCtx(ctx, s.store, q, engine.Options{})
}

// StoreSource adapts a relational.Store so it can be audited directly,
// without wrapping it in a backend.
func StoreSource(store *relational.Store) Source { return storeSource{store: store} }

// Options tunes an audit run. The zero value is the default.
type Options struct {
	// MaxViolations caps how many violations the Report records in detail
	// (Total keeps counting past the cap); 0 means DefaultMaxViolations.
	MaxViolations int
}

// DefaultMaxViolations is the default Report detail cap.
const DefaultMaxViolations = 1000

// Audit verifies P1–P3 for the mapping s against the instance behind src
// and reports every detectable violation. It returns a non-nil Report even
// when violations are found; the error return is reserved for audits that
// could not run (probe failure, unauditable schema, cancelled context).
func Audit(ctx context.Context, src Source, s *schema.Schema) (*Report, error) {
	return AuditOpts(ctx, src, s, Options{})
}

// AuditOpts is Audit with explicit options.
func AuditOpts(ctx context.Context, src Source, s *schema.Schema, opts Options) (*Report, error) {
	start := time.Now()
	a, err := newAuditor(s, opts)
	if err != nil {
		return nil, err
	}
	if err := a.load(ctx, src); err != nil {
		return nil, err
	}
	if err := a.structural(ctx); err != nil {
		return nil, err
	}
	a.rep.Elapsed = time.Since(start)
	return a.rep, nil
}

// achain is one downward route from an annotated schema node, through
// unannotated structural nodes, to the next relation-annotated node, with
// the edge conditions (plus the target's node conditions) accumulated along
// it — the per-position membership test of §3.2.
type achain struct {
	target schema.NodeID
	rel    string
	conds  []schema.EdgeCond
}

// tup is one probed tuple plus its audit state.
type tup struct {
	rel    string
	id     int64
	parent relational.Value
	row    map[string]relational.Value
	// pos is the set of schema nodes the tuple may align to; exactly one
	// for healthy tuples.
	pos []schema.NodeID
	// suspect marks tuples whose alignment is unknown (their own or an
	// ancestor's violation); checks on suspects are best-effort and their
	// failures are not re-reported, so one injected corruption yields one
	// violation, not one per descendant.
	suspect bool
	visited bool
}

func (t *tup) value(col string) relational.Value {
	v, ok := t.row[col]
	if !ok {
		return relational.Null
	}
	return v
}

func (t *tup) condsMatch(conds []schema.EdgeCond) bool {
	for _, c := range conds {
		if !t.value(c.Column).Equal(c.Value) {
			return false
		}
	}
	return true
}

type auditor struct {
	s    *schema.Schema
	max  int
	rep  *Report
	defs map[string]*schema.RelationDef
	// relNodes: relation -> schema nodes annotated with it.
	relNodes map[string][]schema.NodeID
	// chains: annotated node -> routes to the next annotated nodes below.
	chains map[schema.NodeID][]achain
	// parentRels: relation -> relations the mapping places directly above.
	parentRels map[string]map[string]bool
	// domains: relation -> condition column -> declared values.
	domains map[string]map[string]map[string]bool
	// domainVals: same, as sorted literals for repair hints.
	domainVals map[string]map[string][]relational.Value
	// intrinsic: relation -> value column stored by every node of the
	// relation (hence mandatory in every tuple).
	intrinsic map[string]string

	tuples   map[string][]*tup
	byID     map[int64][]*tup
	byParent map[int64][]*tup
}

func newAuditor(s *schema.Schema, opts Options) (*auditor, error) {
	if !s.RootNode().HasRelation() {
		return nil, fmt.Errorf("integrity: cannot audit schema %s: root node %s has no relation annotation", s.Name, s.RootNode().Name)
	}
	defs, err := s.DeriveRelations()
	if err != nil {
		return nil, fmt.Errorf("integrity: %w", err)
	}
	a := &auditor{
		s:          s,
		max:        opts.MaxViolations,
		rep:        &Report{Schema: s.Name, Relations: len(defs)},
		defs:       defs,
		relNodes:   map[string][]schema.NodeID{},
		chains:     map[schema.NodeID][]achain{},
		parentRels: map[string]map[string]bool{},
		domains:    map[string]map[string]map[string]bool{},
		domainVals: map[string]map[string][]relational.Value{},
		intrinsic:  map[string]string{},
		tuples:     map[string][]*tup{},
		byID:       map[int64][]*tup{},
		byParent:   map[int64][]*tup{},
	}
	if a.max <= 0 {
		a.max = DefaultMaxViolations
	}
	for _, n := range s.Nodes() {
		if n.HasRelation() {
			a.relNodes[n.Relation] = append(a.relNodes[n.Relation], n.ID)
		}
	}
	for _, n := range s.Nodes() {
		if !n.HasRelation() {
			continue
		}
		chains, err := chainsFrom(s, n.ID)
		if err != nil {
			return nil, err
		}
		a.chains[n.ID] = chains
		for _, ch := range chains {
			a.addParentRel(ch.rel, n.Relation)
			for _, c := range ch.conds {
				a.addDomain(ch.rel, c)
			}
		}
	}
	for _, c := range s.RootNode().Conds {
		a.addDomain(s.RootNode().Relation, c)
	}
	for rel, nodes := range a.relNodes {
		col := s.Node(nodes[0]).Column
		if col == "" || col == schema.IDColumn {
			continue
		}
		all := true
		for _, id := range nodes[1:] {
			if s.Node(id).Column != col {
				all = false
				break
			}
		}
		if all {
			a.intrinsic[rel] = col
		}
	}
	return a, nil
}

func (a *auditor) addParentRel(child, parent string) {
	set, ok := a.parentRels[child]
	if !ok {
		set = map[string]bool{}
		a.parentRels[child] = set
	}
	set[parent] = true
}

func (a *auditor) addDomain(rel string, c schema.EdgeCond) {
	byCol, ok := a.domains[rel]
	if !ok {
		byCol = map[string]map[string]bool{}
		a.domains[rel] = byCol
		a.domainVals[rel] = map[string][]relational.Value{}
	}
	set, ok := byCol[c.Column]
	if !ok {
		set = map[string]bool{}
		byCol[c.Column] = set
	}
	if !set[c.Value.Key()] {
		set[c.Value.Key()] = true
		vals := append(a.domainVals[rel][c.Column], c.Value)
		sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
		a.domainVals[rel][c.Column] = vals
	}
}

// chainsFrom mirrors the reconstructor's chain enumeration, keeping only
// relation-annotated targets (value leaves store into the origin tuple and
// are checked as columns, not chains).
func chainsFrom(s *schema.Schema, sid schema.NodeID) ([]achain, error) {
	var out []achain
	var visit func(id schema.NodeID, conds []schema.EdgeCond, seen map[schema.NodeID]bool) error
	visit = func(id schema.NodeID, conds []schema.EdgeCond, seen map[schema.NodeID]bool) error {
		for _, e := range s.Node(id).Children() {
			m := s.Node(e.To)
			cconds := conds
			if e.Cond != nil {
				cconds = append(append([]schema.EdgeCond(nil), conds...), *e.Cond)
			}
			switch {
			case m.HasRelation():
				tconds := cconds
				if len(m.Conds) > 0 {
					tconds = append(append([]schema.EdgeCond(nil), cconds...), m.Conds...)
				}
				out = append(out, achain{target: e.To, rel: m.Relation, conds: tconds})
			case m.Column != "":
				// Value leaf: no tuple of its own.
			default:
				if seen[e.To] {
					return fmt.Errorf("integrity: schema %s: unannotated cycle through node %s; occurrence counts unrecoverable", s.Name, m.Name)
				}
				seen[e.To] = true
				if err := visit(e.To, cconds, seen); err != nil {
					return err
				}
				delete(seen, e.To)
			}
		}
		return nil
	}
	err := visit(sid, nil, map[schema.NodeID]bool{})
	return out, err
}

func (a *auditor) violate(v Violation) {
	a.rep.Total++
	if len(a.rep.Violations) < a.max {
		a.rep.Violations = append(a.rep.Violations, v)
	} else {
		a.rep.Truncated = true
	}
}

// load probes every relation with one SELECT and runs the per-tuple column
// checks (P3) while building the structural indexes.
func (a *auditor) load(ctx context.Context, src Source) error {
	rels := a.s.Relations()
	sort.Strings(rels)
	for _, rel := range rels {
		if err := ctx.Err(); err != nil {
			return err
		}
		def := a.defs[rel]
		ts := def.TableSchema()
		sel := &sqlast.Select{From: []sqlast.FromItem{sqlast.From(rel, rel)}}
		for _, c := range ts.Columns {
			sel.Cols = append(sel.Cols, sqlast.Col(rel, c.Name))
		}
		res, err := src.Execute(ctx, sqlast.SingleSelect(sel))
		if err != nil {
			return fmt.Errorf("integrity: probing relation %s: %w", rel, err)
		}
		for _, row := range res.Rows {
			a.rep.Tuples++
			a.ingest(rel, ts, row)
		}
	}
	for _, ts := range a.byParent {
		sortTups(ts)
	}
	return nil
}

func sortTups(ts []*tup) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].rel != ts[j].rel {
			return ts[i].rel < ts[j].rel
		}
		return ts[i].id < ts[j].id
	})
}

// ingest classifies one probed row: id/parentid well-formedness, condition
// column domains, value column kinds, and mandatory leaf values.
func (a *auditor) ingest(rel string, ts *relational.TableSchema, row relational.Row) {
	idv := row[0]
	if idv.IsNull() || idv.Kind() != relational.KindInt {
		a.violate(Violation{Property: P2, Relation: rel, Detail: fmt.Sprintf("tuple with unusable id %s (want a non-NULL integer)", idv),
			Hint: "assign a fresh unique integer id"})
		return
	}
	t := &tup{rel: rel, id: idv.AsInt(), parent: row[1], row: map[string]relational.Value{}}
	for i := 2; i < len(ts.Columns) && i < len(row); i++ {
		t.row[ts.Columns[i].Name] = row[i]
	}
	for _, prev := range a.byID[t.id] {
		if prev.rel == rel {
			a.violate(Violation{Property: P2, Relation: rel, TupleID: t.id,
				Detail: "duplicate id within the relation", Hint: "re-number one of the copies"})
			return
		}
	}
	if !t.parent.IsNull() && t.parent.Kind() != relational.KindInt {
		a.violate(Violation{Property: P2, Relation: rel, TupleID: t.id,
			Detail: fmt.Sprintf("parentid %s is not an integer", t.parent), Hint: "restore the parent link"})
		t.parent = relational.Null // audited as an (already reported) root-shaped stray below
		t.suspect = true
	}

	def := a.defs[rel]
	for _, c := range def.CondColumns {
		v := t.value(c.Name)
		if v.IsNull() {
			continue // the mapping left the edge unspecified for this route
		}
		if v.Kind() != c.Kind {
			a.violate(Violation{Property: P3, Relation: rel, TupleID: t.id, Column: c.Name,
				Detail: fmt.Sprintf("condition column holds %s value %s, want %s", v.Kind(), v, c.Kind),
				Hint:   "restore the materialized edge condition value"})
			continue
		}
		if dom := a.domains[rel][c.Name]; dom != nil && !dom[v.Key()] {
			a.violate(Violation{Property: P3, Relation: rel, TupleID: t.id, Column: c.Name,
				Detail: fmt.Sprintf("condition value %s is outside the mapping's declared domain %v", v, a.domainVals[rel][c.Name]),
				Hint:   fmt.Sprintf("set %s to one of %v, or NULL for an unconditioned route", c.Name, a.domainVals[rel][c.Name])})
		}
	}
	for _, c := range def.ValueColumns {
		v := t.value(c.Name)
		if !v.IsNull() && v.Kind() != relational.KindString {
			a.violate(Violation{Property: P3, Relation: rel, TupleID: t.id, Column: c.Name,
				Detail: fmt.Sprintf("value column holds %s value %s, want element text (%s)", v.Kind(), v, relational.KindString),
				Hint:   "restore the shredded element text"})
		}
	}
	if col, ok := a.intrinsic[rel]; ok && t.value(col).IsNull() {
		a.violate(Violation{Property: P3, Relation: rel, TupleID: t.id, Column: col,
			Detail: fmt.Sprintf("mandatory leaf value is NULL (every schema node of %s stores its text in %s)", rel, col),
			Hint:   "restore the element text or quarantine the tuple"})
		t.suspect = true
	}

	a.tuples[rel] = append(a.tuples[rel], t)
	a.byID[t.id] = append(a.byID[t.id], t)
	if !t.parent.IsNull() {
		a.byParent[t.parent.AsInt()] = append(a.byParent[t.parent.AsInt()], t)
	}
}

// structural runs the P1/P2 pass: position inference down the parentid
// forest from the document roots, then dangling-parent and reachability
// sweeps over whatever the traversal never claimed.
func (a *auditor) structural(ctx context.Context) error {
	rootRel := a.s.RootNode().Relation
	rootID := a.s.Root()
	rels := make([]string, 0, len(a.tuples))
	for rel := range a.tuples {
		rels = append(rels, rel)
	}
	sort.Strings(rels)

	// Document roots and root-shaped strays (NULL parentid elsewhere).
	var queue []*tup
	enqueue := func(t *tup) {
		t.visited = true
		queue = append(queue, t)
	}
	for _, rel := range rels {
		for _, t := range a.tuples[rel] {
			if !t.parent.IsNull() {
				continue
			}
			switch {
			case rel != rootRel:
				a.violate(Violation{Property: P2, Relation: rel, TupleID: t.id,
					Detail: fmt.Sprintf("NULL parentid, but %s is not the root relation (%s)", rel, rootRel),
					Hint:   "re-parent the tuple or delete its subtree"})
				t.suspect = true
				t.pos = a.relNodes[rel]
			case t.condsMatch(a.s.RootNode().Conds):
				t.pos = []schema.NodeID{rootID}
			default:
				if !t.suspect {
					a.violate(Violation{Property: P1, Relation: rel, TupleID: t.id,
						Detail: "document root tuple fails the root node's conditions",
						Hint:   "restore the materialized node condition columns"})
				}
				t.suspect = true
				t.pos = a.relNodes[rel]
			}
			enqueue(t)
		}
	}

	steps := 0
	for len(queue) > 0 {
		if steps++; steps%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		t := queue[0]
		queue = queue[1:]
		for _, c := range a.byParent[t.id] {
			if c.visited {
				continue
			}
			a.place(t, c)
			enqueue(c)
		}
	}

	// Dangling parents: unvisited tuples whose parentid resolves to no
	// tuple at all head an orphan subtree; one violation per head, then the
	// subtree is claimed so descendants are not re-reported.
	for _, rel := range rels {
		for _, t := range a.tuples[rel] {
			if t.visited || t.parent.IsNull() || len(a.byID[t.parent.AsInt()]) > 0 {
				continue
			}
			a.violate(Violation{Property: P2, Relation: rel, TupleID: t.id,
				Detail: fmt.Sprintf("parentid %d resolves to no tuple in any relation", t.parent.AsInt()),
				Hint:   "delete the orphan subtree or re-parent it under an existing tuple"})
			t.suspect = true
			t.pos = a.relNodes[rel]
			enqueue(t)
			for len(queue) > 0 {
				h := queue[0]
				queue = queue[1:]
				for _, c := range a.byParent[h.id] {
					if c.visited {
						continue
					}
					a.place(h, c)
					enqueue(c)
				}
			}
		}
	}

	// Whatever is still unvisited has an existing parent but no route to a
	// root: a parentid cycle.
	for _, rel := range rels {
		for _, t := range a.tuples[rel] {
			if !t.visited {
				a.violate(Violation{Property: P2, Relation: rel, TupleID: t.id,
					Detail: "unreachable from any document root (parentid cycle)",
					Hint:   "break the cycle by re-parenting one of its tuples"})
			}
		}
	}
	return nil
}

// place aligns child c under parent t: legality of the parent's relation
// along some mapping edge (P2), then the condition columns must select
// exactly one schema position among the chains below t's positions (P1).
func (a *auditor) place(t, c *tup) {
	if !a.parentRels[c.rel][t.rel] {
		legal := make([]string, 0, len(a.parentRels[c.rel]))
		for r := range a.parentRels[c.rel] {
			legal = append(legal, r)
		}
		sort.Strings(legal)
		a.violate(Violation{Property: P2, Relation: c.rel, TupleID: c.id,
			Detail: fmt.Sprintf("parented under %s.id=%d, but the mapping never places %s below %s (legal parents: %v)",
				t.rel, t.id, c.rel, t.rel, legal),
			Hint: "re-parent the tuple under a relation the mapping allows"})
		c.suspect = true
		c.pos = a.relNodes[c.rel]
		return
	}
	matched := map[schema.NodeID]bool{}
	for _, pp := range t.pos {
		for _, ch := range a.chains[pp] {
			if ch.rel == c.rel && c.condsMatch(ch.conds) {
				matched[ch.target] = true
			}
		}
	}
	switch len(matched) {
	case 0:
		if !t.suspect && !c.suspect {
			a.violate(Violation{Property: P1, Relation: c.rel, TupleID: c.id,
				Detail: fmt.Sprintf("condition columns select no schema position under parent %s.id=%d", t.rel, t.id),
				Hint:   "restore the materialized edge condition columns or quarantine the tuple"})
		}
		c.suspect = true
		c.pos = a.relNodes[c.rel]
	case 1:
		for id := range matched {
			c.pos = []schema.NodeID{id}
		}
		c.suspect = c.suspect || t.suspect
	default:
		if !t.suspect && !c.suspect {
			a.violate(Violation{Property: P1, Relation: c.rel, TupleID: c.id,
				Detail: fmt.Sprintf("condition columns select %d schema positions under parent %s.id=%d; the alignment is ambiguous", len(matched), t.rel, t.id),
				Hint:   "adjust the mapping or the condition columns so exactly one position matches"})
		}
		pos := make([]schema.NodeID, 0, len(matched))
		for id := range matched {
			pos = append(pos, id)
		}
		sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
		c.pos = pos
		c.suspect = c.suspect || t.suspect
	}
}
