package core_test

import (
	"strings"
	"testing"

	"xmlsql/internal/core"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
)

// Golden SQL tests: the pruned translations of the paper's worked queries,
// locked verbatim. These are the strongest regression guard — any change to
// alias generation, condition ordering, or the pruning loops that alters the
// emitted SQL shows up here immediately (and if the new output is equivalent
// and desirable, the goldens are updated deliberately).

func prunedSQL(t *testing.T, s *schema.Schema, query string) string {
	t.Helper()
	g, err := pathid.Build(s, pathexpr.MustParse(query))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.TranslateOpts(g, core.Options{NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(res.Query.SQL(), "\n")
}

func TestGoldenSQL(t *testing.T) {
	xm := workloads.XMark()
	s1 := workloads.S1()
	s3 := workloads.S3()
	edge, err := shred.EdgeSchemaFor(workloads.XMarkFull())
	if err != nil {
		t.Fatal(err)
	}
	s2 := workloads.S2()

	cases := []struct {
		name   string
		schema *schema.Schema
		query  string
		want   string
	}{
		{
			name:   "Q1 -> SQ1^2 (the §2 scan)",
			schema: xm,
			query:  workloads.QueryQ1,
			want: "select IC.category\n" +
				"from   InCat IC",
		},
		{
			name:   "Q2 -> the §4.1 one-join suffix",
			schema: xm,
			query:  workloads.QueryQ2,
			want: "select IC.category\n" +
				"from   Item I, InCat IC\n" +
				"where  IC.parentid = I.id AND I.parentcode = 1",
		},
		{
			name:   "Q3 -> the duplicate-free SQ3^2 equivalent",
			schema: s1,
			query:  workloads.QueryQ3,
			want: "select R3.C1\n" +
				"from   R2, R3\n" +
				"where  R3.parentid = R2.id AND (R3.pc = 1 OR R2.pc = 2 OR R2.pc = 3)",
		},
		{
			name:   "Q4 -> R6 join R10 (Fig. 7)",
			schema: s3,
			query:  workloads.QueryQ4,
			want: "select R10.id\n" +
				"from   R6, R10\n" +
				"where  R10.parentid = R6.id",
		},
		{
			name:   "Q6 -> R9 join R10 (Fig. 9)",
			schema: s3,
			query:  workloads.QueryQ6,
			want: "select R10.id\n" +
				"from   R9, R10\n" +
				"where  R10.parentid = R9.id",
		},
		{
			name:   "Q8 -> the §5.3 two-way Edge self-join",
			schema: edge,
			query:  workloads.QueryQ8,
			want: "select E2.value\n" +
				"from   Edge E, Edge E2\n" +
				"where  E2.parentid = E.id AND E.tag = 'InCategory' AND E2.tag = 'Category'",
		},
		{
			name:   "DAG leaf collapses to a scan (Fig. 6)",
			schema: s2,
			query:  "//s/t1",
			want: "select T1.C1\n" +
				"from   T1",
		},
		{
			name:   "predicate query stays a filtered join",
			schema: xm,
			query:  "//Item[name='item-Af-1']/InCategory/Category",
			want: "select IC.category\n" +
				"from   Item I, InCat IC\n" +
				"where  IC.parentid = I.id AND I.name = 'item-Af-1'",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := prunedSQL(t, c.schema, c.query)
			if got != c.want {
				t.Errorf("golden mismatch for %s:\n--- got:\n%s\n--- want:\n%s", c.query, got, c.want)
			}
		})
	}
}

func TestGoldenQ7Shape(t *testing.T) {
	// Q7's exact CTE text is long; lock the structural facts instead: one
	// recursive CTE over R7/R8/R9 seeded from R2, no R0 anywhere.
	s3 := workloads.S3()
	got := prunedSQL(t, s3, workloads.QueryQ7)
	for _, want := range []string{"with recursive", "R2", "R8", "R9", "R7", "R10"} {
		if !strings.Contains(got, want) {
			t.Errorf("Q7 SQL missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "R0") {
		t.Errorf("Q7 SQL must not reference R0:\n%s", got)
	}
}

func TestGoldenNaiveQ1(t *testing.T) {
	// The baseline's first branch, locked verbatim (the SQ1^1 shape).
	xm := workloads.XMark()
	g, err := pathid.Build(xm, pathexpr.MustParse(workloads.QueryQ1))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := translate.Naive(g)
	if err != nil {
		t.Fatal(err)
	}
	sql := naive.SQL()
	firstBranch := strings.SplitN(sql, "union all", 2)[0]
	want := "select IC.category\n" +
		"from   Site S, Item I, InCat IC\n" +
		"where  I.parentid = S.id AND IC.parentid = I.id AND I.parentcode = 1\n"
	if firstBranch != want {
		t.Errorf("naive Q1 first branch:\n--- got:\n%q\n--- want:\n%q", firstBranch, want)
	}
	if strings.Count(sql, "union all") != 5 {
		t.Errorf("naive Q1 should have 6 branches:\n%s", sql)
	}
}
