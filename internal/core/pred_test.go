package core_test

import (
	"strings"
	"testing"

	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/workloads"
)

// The predicate-query extension (§6 "more general class of XML queries"):
// steps may filter on a child value stored as a column of the matched
// element's tuple. These tests check end-to-end equivalence (naive ≡ pruned
// ≡ reference over the document) and that predicates become plain column
// selections which sharpen — rather than defeat — pruning.

func TestPredicateEquivalenceXMark(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 15, CategoriesPerItem: 2, NumCategories: 10, Seed: 5,
	})
	// Find a real item name so the predicate selects something.
	name := "item-Af-0"
	for _, q := range []string{
		"//Item[name='" + name + "']/InCategory/Category",
		"//Item[name='" + name + "']",
		"//Item[name='no-such-item']/InCategory/Category",
		"/Site/Regions/Africa/Item[name='" + name + "']/InCategory/Category",
	} {
		t.Run(q, func(t *testing.T) { checkEquivalence(t, s, doc, q) })
	}
}

func TestPredicateSelectsExactRows(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 15, CategoriesPerItem: 2, NumCategories: 10, Seed: 5,
	})
	// Each item has a unique name and two categories: the predicate query
	// must return exactly those two.
	_, pruned := checkEquivalence(t, s, doc, "//Item[name='item-As-20']/InCategory/Category")
	// (row count is asserted against the reference inside checkEquivalence;
	// here we check the query shape.)
	sql := pruned.SQL()
	if !strings.Contains(sql, "name = 'item-As-20'") {
		t.Errorf("predicate selection missing:\n%s", sql)
	}
}

func TestPredicateSharpensPruning(t *testing.T) {
	// //Item[name=x]/InCategory/Category: the pruned query should be
	// Item ⋈ InCat with the name selection — the predicate keeps the suffix
	// at two relations (the Item must be joined to apply the filter) but no
	// Site join.
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	naive, pruned := checkEquivalence(t, s, doc, "//Item[name='item-Af-1']/InCategory/Category")
	psh := pruned.Shape()
	if psh.Branches != 1 || psh.Joins != 1 {
		t.Errorf("pruned predicate query shape = %v, want 1 branch / 1 join:\n%s", psh, pruned.SQL())
	}
	if strings.Contains(pruned.SQL(), "Site") {
		t.Errorf("pruned predicate query must not join Site:\n%s", pruned.SQL())
	}
	if nsh := naive.Shape(); nsh.Branches != 6 {
		t.Errorf("naive predicate query = %v, want 6 branches", nsh)
	}
}

func TestPredicateOnADEX(t *testing.T) {
	s := workloads.ADEX()
	doc := workloads.GenerateADEX(workloads.DefaultADEXConfig())
	for _, q := range []string{
		"//Ad[Title='Vehicles ad 3']/Contact/Phone",
		"//Ad[Price='555']/Title",
		"//Contact[Email='seller7@example.com']/Phone",
	} {
		t.Run(q, func(t *testing.T) { checkEquivalence(t, s, doc, q) })
	}
}

func TestPredicateOnRecursiveSchemaRejectedOrCorrect(t *testing.T) {
	// S3 has no value columns, so predicates cannot bind; the pipeline must
	// reject them cleanly rather than mistranslate.
	s := workloads.S3()
	_, err := pathid.Build(s, pathexpr.MustParse("/E0/E2[E3='x']/E8//E10/elemid"))
	if err == nil {
		t.Error("predicate on child stored in its own relation must be rejected")
	}
}

func TestPredicateUnsupportedCases(t *testing.T) {
	s := workloads.XMark()
	// InCategory is stored in its own relation InCat, not as a value column
	// of Item.
	if _, err := pathid.Build(s, pathexpr.MustParse("//Item[InCategory='x']/name")); err == nil {
		t.Error("predicate on relation-stored child accepted")
	}
	// Predicate on the root step.
	if _, err := pathid.Build(s, pathexpr.MustParse("/Site[Regions='x']//Category")); err == nil {
		t.Error("predicate on the root step accepted")
	}
}

func TestPredicateNeverSatisfiable(t *testing.T) {
	// Category has no child at all; a predicate child absent from the schema
	// makes the branch unsatisfiable and the result empty.
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	naive, _ := checkEquivalence(t, s, doc, "//InCategory[nosuch='x']/Category")
	if len(naive.Selects) != 0 {
		t.Errorf("unsatisfiable predicate should produce an empty query, got:\n%s", naive.SQL())
	}
}

func TestParsePredicates(t *testing.T) {
	p := pathexpr.MustParse("//Item[name='a b c']/InCategory/Category")
	if p.Steps[0].Pred == nil || p.Steps[0].Pred.Child != "name" || p.Steps[0].Pred.Value != "a b c" {
		t.Errorf("predicate parsed wrongly: %+v", p.Steps[0].Pred)
	}
	if !p.HasPreds() {
		t.Error("HasPreds false")
	}
	if pred := p.PredForLabel("Item"); pred == nil {
		t.Error("PredForLabel(Item) nil")
	}
	if pred := p.PredForLabel("Category"); pred != nil {
		t.Error("PredForLabel(Category) non-nil")
	}
	for _, bad := range []string{
		"//Item[name]",          // no comparison
		"//Item[name='x]",       // unterminated quote
		"//Item[name='x'",       // unterminated bracket
		"//*[x='1']",            // wildcard predicate
		"//a[x='1']//a[x='2']",  // two predicates on one label
		"//Item[bad label='x']", // invalid child label
	} {
		if _, err := pathexpr.Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// The same predicate repeated on a label is fine.
	if _, err := pathexpr.Parse("//a[x='1']//a[x='1']"); err != nil {
		t.Errorf("identical repeated predicate rejected: %v", err)
	}
}
