package core

import (
	"fmt"

	"xmlsql/internal/pathexpr"
)

// pruner runs the two pruning loops of Figures 4 and 8 over the PathSet.
type pruner struct {
	items       []*item
	schemaPaths []schemaPath
	dfa         *pathexpr.PredDFA
	unroll      int
	useLeadOpt  bool
	combineMode combineMode
}

type combineMode uint8

const (
	// combineFull merges identical templates and OR-merges linear suffixes
	// with equal relation sequences — the paper's §4.4/§5.1 behaviour.
	combineFull combineMode = iota
	// combineIdenticalOnly merges only byte-identical templates (ablation:
	// no disjunctive merging; conflicts force longer suffixes instead).
	combineIdenticalOnly
)

// errCannotPrune signals that safe suffixes could not be established; the
// caller falls back to the baseline translation.
var errCannotPrune = fmt.Errorf("core: pruning could not establish safe suffixes")

func (pr *pruner) run() error {
	if err := pr.loopNonResultConflicts(); err != nil {
		return err
	}
	return pr.loopResultConflicts()
}

// needsGrowth implements the per-item conditions that force a longer suffix:
//
//  1. some suffix pattern conflicts with a schema path not in the query
//     result (Fig. 4/8, first loop);
//  2. two *distinct* suffix paths of the item conflict with each other —
//     an unanchored entry scan would then derive a tuple through both
//     routes, duplicating it (the recursive-schema analogue of Fig. 5);
//  3. an entry node also has a parent inside the region ("mixed entry"):
//     its scan branch would subsume its derived branch.
func (pr *pruner) needsGrowth(it *item) bool {
	pats := pr.itemPatterns(it)
	for _, pat := range pats {
		for i := range pr.schemaPaths {
			sp := &pr.schemaPaths[i]
			if sp.pat.LastRel() != pat.LastRel() {
				continue
			}
			if Conflicts(pat, sp.pat) && !sp.inResult(it.g.Schema, pr.dfa, it.resultCol) {
				return true
			}
		}
	}
	for i := 0; i < len(pats); i++ {
		for j := i + 1; j < len(pats); j++ {
			if Conflicts(pats[i], pats[j]) {
				return true
			}
		}
	}
	for e := range it.entry {
		for _, pe := range it.g.Parents(e) {
			if it.nodes[pe.From] {
				return true // mixed entry
			}
		}
	}
	return false
}

func (pr *pruner) itemPatterns(it *item) []*Pattern {
	return it.patterns(pr.unroll)
}

// loopNonResultConflicts is the first while loop: grow every item until its
// SQL cannot return tuples of paths outside the query result (and cannot
// double-derive its own tuples).
func (pr *pruner) loopNonResultConflicts() error {
	limit := pr.growthLimit()
	for round := 0; ; round++ {
		if round > limit {
			return errCannotPrune
		}
		changed := false
		for _, it := range pr.items {
			if !pr.needsGrowth(it) {
				continue
			}
			if !it.grow(pr.useLeadOpt) {
				return errCannotPrune
			}
			changed = true
		}
		if !changed {
			return nil
		}
	}
}

// loopResultConflicts is the second while loop: two items whose suffix
// queries can overlap must be combinable (their results are then merged into
// a single SELECT or an identical template emitted once); otherwise the
// smaller one grows until the overlap disappears.
func (pr *pruner) loopResultConflicts() error {
	limit := pr.growthLimit()
	for round := 0; ; round++ {
		if round > limit {
			return errCannotPrune
		}
		changed := false
		for i := 0; i < len(pr.items); i++ {
			for j := i + 1; j < len(pr.items); j++ {
				p, q := pr.items[i], pr.items[j]
				if pr.combinable(p, q) {
					continue
				}
				if !pr.itemsConflict(p, q) {
					continue
				}
				smaller := p
				if len(q.nodes) < len(p.nodes) {
					smaller = q
				}
				if !smaller.grow(pr.useLeadOpt) {
					// The smaller is stuck; try the other one.
					other := p
					if smaller == p {
						other = q
					}
					if !other.grow(pr.useLeadOpt) {
						return errCannotPrune
					}
				}
				changed = true
			}
			if changed {
				break
			}
		}
		if !changed {
			return nil
		}
		// Growing a suffix adds join constraints monotonically, so it can
		// never relax an already-satisfied obligation; but the grown item's
		// new entry pattern may now mix with non-result tuples, so loop-1's
		// invariant must be re-established after each loop-2 round.
		if err := pr.loopNonResultConflicts(); err != nil {
			return err
		}
	}
}

func (pr *pruner) itemsConflict(p, q *item) bool {
	ppats := pr.itemPatterns(p)
	qpats := pr.itemPatterns(q)
	for _, a := range ppats {
		for _, b := range qpats {
			if Conflicts(a, b) {
				return true
			}
		}
	}
	return false
}

// combinable decides whether two items' queries may overlap without growing:
// identical templates are emitted once; linear suffixes over the same
// relation sequence with the same result annotation are merged into one
// SELECT whose WHERE disjoins their conditions (§4.2's combinability).
func (pr *pruner) combinable(p, q *item) bool {
	if p.resultRel != q.resultRel || p.resultCol != q.resultCol {
		return false
	}
	if p.templateKey(pr.unroll) == q.templateKey(pr.unroll) {
		return true
	}
	if pr.combineMode == combineIdenticalOnly {
		return false
	}
	pseq, pok := p.linear()
	qseq, qok := q.linear()
	if !pok || !qok {
		return false
	}
	ppat := p.cpPathPattern(p.leadOf(pseq[0]), pseq, pseq[0] == p.g.Start())
	qpat := q.cpPathPattern(q.leadOf(qseq[0]), qseq, qseq[0] == q.g.Start())
	if ppat == nil || qpat == nil {
		return false
	}
	if ppat.RootComplete != qpat.RootComplete || ppat.Len() != qpat.Len() {
		return false
	}
	for i := range ppat.RelSeq {
		if ppat.RelSeq[i] != qpat.RelSeq[i] {
			return false
		}
	}
	return true
}

func (pr *pruner) growthLimit() int {
	n := len(pr.items)
	if n == 0 {
		return 1
	}
	// Each item can grow at most twice per cross-product node (lead stage +
	// node inclusion); pairwise interaction multiplies by the item count.
	return (2*len(pr.items[0].g.Nodes()) + 4) * (n + 1)
}
