// Package core implements the paper's contribution: XML-to-SQL query
// translation that exploits the "lossless from XML" integrity constraint.
// The translator prunes the cross-product schema produced by the PathId
// stage — replacing root-to-leaf join chains by the shortest suffixes whose
// SQL cannot return tuples of paths outside the query result (§4, §5) — and
// then generates SQL that merges combinable suffixes into single SELECT
// blocks with disjunctive conditions (§4.4).
package core

import (
	"sort"
	"strings"

	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
)

// Pattern abstracts the tuple-retrieval behaviour of SQL(p) for a (suffix)
// path p: the sequence of relations joined top-down and, per occurrence,
// the selection conditions known to hold. Two SQL queries can return the
// value of a common element only if their patterns conflict (§4.2); the
// pruning loops reason entirely in terms of patterns.
type Pattern struct {
	// RelSeq is the paper's RelSeq(p), top-down.
	RelSeq []string
	// Sels[i] are the selection conditions on occurrence i, as column ->
	// value. Columns absent from the map are unconstrained ("any value in
	// the corresponding domain, including null, is allowed" — §4.4's
	// discussion of Figure 5).
	Sels []map[string]relational.Value
	// Neqs[i] are negative conditions on occurrence i (column -> excluded
	// values), contributed by unsatisfied predicate branches of the §6
	// extension. nil when the pattern has no negative knowledge.
	Neqs []map[string][]relational.Value
	// RootComplete marks patterns whose first occurrence is the document
	// root (a full root-to-node path, or a pruned suffix that grew all the
	// way up). Root tuples have no parent, so a root-complete pattern never
	// overlaps a longer one.
	RootComplete bool
}

// Len returns the number of relation occurrences.
func (p *Pattern) Len() int { return len(p.RelSeq) }

// LastRel returns the relation whose tuples the query returns.
func (p *Pattern) LastRel() string { return p.RelSeq[len(p.RelSeq)-1] }

// String renders the pattern for debugging and template keys.
func (p *Pattern) String() string {
	var b strings.Builder
	if p.RootComplete {
		b.WriteString("^")
	}
	for i, r := range p.RelSeq {
		if i > 0 {
			b.WriteString("->")
		}
		b.WriteString(r)
		if len(p.Sels[i]) > 0 || len(p.neqAt(i)) > 0 {
			cols := make([]string, 0, len(p.Sels[i]))
			for c := range p.Sels[i] {
				cols = append(cols, c)
			}
			sort.Strings(cols)
			b.WriteString("{")
			for j, c := range cols {
				if j > 0 {
					b.WriteString(",")
				}
				b.WriteString(c)
				b.WriteString("=")
				b.WriteString(p.Sels[i][c].String())
			}
			neq := p.neqAt(i)
			ncols := make([]string, 0, len(neq))
			for c := range neq {
				ncols = append(ncols, c)
			}
			sort.Strings(ncols)
			for _, c := range ncols {
				for _, v := range neq[c] {
					if b.String()[b.Len()-1] != '{' {
						b.WriteString(",")
					}
					b.WriteString(c)
					b.WriteString("!=")
					b.WriteString(v.String())
				}
			}
			b.WriteString("}")
		}
	}
	return b.String()
}

// Conflicts reports whether the SQL queries of two patterns can return a
// common tuple — the paper's conflict relation (§4.2), aligned at the last
// occurrence:
//
//   - one RelSeq must be a suffix of the other ("if each sequence has a join
//     not present in the other, they will not generate common results");
//   - no aligned occurrence may carry contradictory selections on the same
//     column (an unspecified column is compatible with anything);
//   - a root-complete pattern shorter than the other cannot conflict: its
//     result tuples' ancestor chains end at the document root, so the longer
//     pattern's extra joins can never be satisfied.
func Conflicts(p, q *Pattern) bool {
	shorter, longer := p, q
	if shorter.Len() > longer.Len() {
		shorter, longer = longer, shorter
	}
	off := longer.Len() - shorter.Len()
	for i := 0; i < shorter.Len(); i++ {
		if shorter.RelSeq[i] != longer.RelSeq[off+i] {
			return false
		}
	}
	if shorter.RootComplete && off != 0 {
		return false
	}
	for i := 0; i < shorter.Len(); i++ {
		a, b := shorter.Sels[i], longer.Sels[off+i]
		for col, va := range a {
			if vb, ok := b[col]; ok && !va.Equal(vb) {
				return false
			}
		}
		// An equality on one side excluded by the other side's negative
		// knowledge rules the overlap out.
		if excludedBy(a, longer.neqAt(off+i)) || excludedBy(b, shorter.neqAt(i)) {
			return false
		}
	}
	return true
}

func (p *Pattern) neqAt(i int) map[string][]relational.Value {
	if p.Neqs == nil || i >= len(p.Neqs) {
		return nil
	}
	return p.Neqs[i]
}

func excludedBy(sels map[string]relational.Value, neqs map[string][]relational.Value) bool {
	if len(neqs) == 0 {
		return false
	}
	for col, v := range sels {
		for _, ex := range neqs[col] {
			if v.Equal(ex) {
				return true
			}
		}
	}
	return false
}

// condsToMap folds a condition list into a column -> value map of the
// positive conditions. Conflicting duplicates cannot arise for patterns
// produced from valid schemas (the shredder rejects them), so later values
// simply win.
func condsToMap(conds []schema.EdgeCond) map[string]relational.Value {
	m := map[string]relational.Value{}
	for _, c := range conds {
		if !c.Neq {
			m[c.Column] = c.Value
		}
	}
	return m
}

// condsToNeqMap collects the negative conditions, or nil when there are
// none.
func condsToNeqMap(conds []schema.EdgeCond) map[string][]relational.Value {
	var m map[string][]relational.Value
	for _, c := range conds {
		if !c.Neq {
			continue
		}
		if m == nil {
			m = map[string][]relational.Value{}
		}
		m[c.Column] = append(m[c.Column], c.Value)
	}
	return m
}

// appendOcc pushes one occurrence's conditions onto the pattern.
func (p *Pattern) appendOcc(rel string, conds []schema.EdgeCond) {
	p.RelSeq = append(p.RelSeq, rel)
	p.Sels = append(p.Sels, condsToMap(conds))
	if neq := condsToNeqMap(conds); neq != nil || p.Neqs != nil {
		for len(p.Neqs) < len(p.RelSeq)-1 {
			p.Neqs = append(p.Neqs, nil)
		}
		p.Neqs = append(p.Neqs, neq)
	}
}
