package core

import (
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
)

// schemaPath is one root-to-tuple-node path of the mapping schema, with its
// retrieval pattern and the query-DFA state reached at its endpoint. The
// pruning loops test candidate suffixes for conflicts against these paths
// and ask, per result column, whether each path's tuples belong to the query
// result. For predicate queries (§6 extension) each predicated node on a
// path contributes a satisfied branch (col='v' in the pattern) and an
// unsatisfied branch (col!='v'); both are enumerated.
type schemaPath struct {
	nodes    []schema.NodeID
	pat      *Pattern
	end      schema.NodeID
	endState int
}

// DefaultUnroll bounds cycle traversal when enumerating paths of recursive
// schemas: each node may appear at most this many times on one path. Longer
// unrollings only repeat relation-sequence segments that the bounded set
// already exhibits; the equivalence test-suite backs this engineering bound
// empirically.
const DefaultUnroll = 3

// enumerateSchemaPaths lists every root-to-tuple-node path (up to the unroll
// bound), running the query DFA alongside and branching on predicate
// satisfaction where applicable.
func enumerateSchemaPaths(s *schema.Schema, q *pathexpr.Path, dfa *pathexpr.PredDFA, unroll int) []schemaPath {
	var out []schemaPath
	visits := make(map[schema.NodeID]int)
	var cur []schema.NodeID

	type occ struct {
		rel   string
		conds []schema.EdgeCond
	}
	var occs []occ

	record := func(id schema.NodeID, state int) {
		pat := &Pattern{RootComplete: true}
		for _, o := range occs {
			pat.appendOcc(o.rel, o.conds)
		}
		out = append(out, schemaPath{
			nodes:    append([]schema.NodeID(nil), cur...),
			pat:      pat,
			end:      id,
			endState: state,
		})
	}

	// rec visits node id with the DFA state reached by consuming it, the
	// edge conditions accumulated since the last tuple occurrence, and any
	// predicate condition contributed by this node's own consumption.
	var rec func(id schema.NodeID, state int, pending, extraConds []schema.EdgeCond)
	rec = func(id schema.NodeID, state int, pending, extraConds []schema.EdgeCond) {
		if visits[id] >= unroll {
			return
		}
		visits[id]++
		cur = append(cur, id)
		n := s.Node(id)
		pushedOcc := false
		if n.HasRelation() {
			conds := append(append([]schema.EdgeCond(nil), pending...), n.Conds...)
			conds = append(conds, extraConds...)
			occs = append(occs, occ{rel: n.Relation, conds: conds})
			pending = nil
			pushedOcc = true
			record(id, state)
		}

		for _, e := range n.Children() {
			m := s.Node(e.To)
			edgePending := pending
			if e.Cond != nil {
				edgePending = append(append([]schema.EdgeCond(nil), pending...), *e.Cond)
			}
			pred := q.PredForLabel(m.Label)
			var col string
			if pred != nil && m.HasRelation() {
				col, _ = predColumnCore(s, m, pred.Child)
			}
			if pred == nil || col == "" {
				rec(e.To, dfa.Step(state, m.Label, false), edgePending, nil)
				continue
			}
			val := relational.String(pred.Value)
			rec(e.To, dfa.Step(state, m.Label, true), edgePending,
				[]schema.EdgeCond{{Column: col, Value: val}})
			rec(e.To, dfa.Step(state, m.Label, false), edgePending,
				[]schema.EdgeCond{{Column: col, Value: val, Neq: true}})
		}

		if pushedOcc {
			occs = occs[:len(occs)-1]
		}
		cur = cur[:len(cur)-1]
		visits[id]--
	}
	root := s.Root()
	rec(root, dfa.Step(dfa.Start(), s.Node(root).Label, false), nil, nil)
	return out
}

// predColumnCore mirrors pathid's predicate-column resolution for the
// pruning side: the value column of n's own tuple storing the predicate
// child's text, or "" when the schema gives n no such *direct* child
// ("[a='v']" is a child-axis test; structural grandchildren do not count).
func predColumnCore(s *schema.Schema, n *schema.Node, childLabel string) (string, error) {
	var found string
	for _, e := range n.Children() {
		m := s.Node(e.To)
		if m.Label != childLabel || m.HasRelation() {
			continue
		}
		if m.Column != "" && m.Column != schema.IDColumn {
			found = m.Column
		}
	}
	return found, nil
}

// inResult reports whether the tuples of this schema path belong to the
// query result *with respect to result column col*: the query must accept an
// element whose value is drawn from column col of the path's endpoint
// tuples. That is either the endpoint element itself (its own annotation
// column matches and its DFA state accepts) or a column-only value leaf
// below it (owner = this endpoint) whose label step reaches an accepting
// state.
func (sp *schemaPath) inResult(s *schema.Schema, dfa *pathexpr.PredDFA, col string) bool {
	n := s.Node(sp.end)
	ownCol := n.Column
	if ownCol == "" {
		ownCol = schema.IDColumn
	}
	if ownCol == col && dfa.Accepting(sp.endState) {
		return true
	}
	// Column-only leaves owned by this node, possibly through unannotated
	// structural children.
	var walk func(id schema.NodeID, state int, seen map[schema.NodeID]bool) bool
	walk = func(id schema.NodeID, state int, seen map[schema.NodeID]bool) bool {
		for _, e := range s.Node(id).Children() {
			m := s.Node(e.To)
			st := dfa.Step(state, m.Label, false)
			switch {
			case m.HasRelation():
				continue // its values belong to a different tuple
			case m.Column != "":
				if m.Column == col && dfa.Accepting(st) {
					return true
				}
			default:
				if seen[e.To] {
					continue
				}
				seen[e.To] = true
				if walk(e.To, st, seen) {
					return true
				}
			}
		}
		return false
	}
	return walk(sp.end, sp.endState, map[schema.NodeID]bool{})
}
