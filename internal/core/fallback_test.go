package core_test

import (
	"testing"

	"xmlsql/internal/core"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/xmltree"
)

// ambiguousSchema stores two differently-labelled children in the SAME
// relation with no distinguishing conditions. Such a mapping violates the
// preconditions of the "lossless from XML" constraint — the relational data
// cannot be unambiguously mapped back to elements — and is exactly the kind
// of input the pruning loops cannot make safe.
func ambiguousSchema() *schema.Schema {
	return schema.NewBuilder("ambiguous").
		Node("r", "r", schema.Rel("R0")).
		Node("a", "a", schema.Rel("R1"), schema.Col("val")).
		Node("b", "b", schema.Rel("R1"), schema.Col("val2")).
		Root("r").
		Edge("r", "a").
		Edge("r", "b").
		MustBuild()
}

func TestAmbiguousMappingFallsBack(t *testing.T) {
	s := ambiguousSchema()
	g, err := pathid.Build(s, pathexpr.MustParse("//a"))
	if err != nil {
		t.Fatal(err)
	}
	// With NoFallback the pruner reports that no safe suffix exists: the
	// //a suffixes conflict with the b paths all the way to the root.
	if _, err := core.TranslateOpts(g, core.Options{NoFallback: true}); err == nil {
		t.Error("pruning accepted an ambiguous mapping")
	}
	// The default behaviour retains the baseline and flags it.
	res, err := core.Translate(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Error("fallback flag not set")
	}
	if res.Query == nil || len(res.Query.Selects) == 0 {
		t.Error("fallback produced no query")
	}
}

func TestAmbiguousMappingFailsLosslessCheck(t *testing.T) {
	// The same mapping is rejected by the constraint checker: the shredded
	// instance cannot be unambiguously reconstructed — which is why the
	// translator was right to refuse pruning.
	s := ambiguousSchema()
	doc, err := xmltree.ParseString(`<r><a>1</a><b>2</b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	if err := shred.CheckLossless(s, store); err == nil {
		t.Error("lossless check accepted an ambiguous mapping's instance")
	}
}
