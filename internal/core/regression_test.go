package core

import (
	"strings"
	"testing"

	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/xmltree"
)

func buildRepro() *schema.Schema {
	b := schema.NewBuilder("repro")
	b.Node("n1", "d", schema.Rel("R1"))
	b.Node("n2", "sd")
	b.Node("n3", "b", schema.Rel("R2"))
	b.Node("n4", "sc")
	b.Node("n5", "a", schema.Rel("R2"), schema.Col("val"))
	b.Node("n6", "d", schema.Rel("R1"), schema.Col("val"))
	b.Node("n7", "d", schema.Rel("R3"))
	b.Node("n8", "c", schema.Rel("R3"), schema.Col("val"))
	b.Node("n9", "c", schema.Rel("R2"))
	b.Node("n10", "e", schema.Rel("R2"))
	b.Node("n11", "b", schema.Col("val"))
	b.Node("n12", "d", schema.Col("val2"))
	b.Node("n13", "c", schema.Col("val3"))
	b.Node("n14", "se")
	b.Node("n15", "c", schema.Rel("R2"), schema.Col("val"))
	b.Node("n16", "c", schema.Rel("R3"))
	b.Node("n17", "d", schema.Col("val"))
	b.Node("n18", "c", schema.Col("val2"))
	b.Node("n19", "a", schema.Col("val3"))
	b.Node("n20", "d", schema.Rel("R4"), schema.Col("val"))
	b.Root("n1")
	b.Edge("n1", "n2")
	b.EdgeCondInt("n2", "n3", "pc", 1)
	b.EdgeCondInt("n2", "n9", "pc", 2)
	b.Edge("n2", "n20")
	b.Edge("n3", "n4")
	b.Edge("n3", "n7")
	b.Edge("n4", "n5")
	b.Edge("n4", "n6")
	b.Edge("n7", "n8")
	b.EdgeCondInt("n9", "n10", "pc", 1)
	b.Edge("n9", "n14")
	b.Edge("n9", "n16")
	b.Edge("n10", "n11")
	b.Edge("n10", "n12")
	b.Edge("n10", "n13")
	b.EdgeCondInt("n14", "n15", "pc", 2)
	b.Edge("n15", "n6")
	b.Edge("n16", "n17")
	b.Edge("n16", "n18")
	b.Edge("n16", "n19")
	return b.MustBuild()
}

// TestUnannotatedEntryNormalization is the regression test for a bug found
// by the randomized stress hunt (docgen seed 2616): growing a suffix region
// can leave an *unannotated* structural node as a region boundary (here the
// "se" node above the shared "d" leaf); the SQL generator must push such
// entries down to the next tuple nodes, turning the traversed edge
// conditions into lead conditions, instead of failing with "inline node has
// 0 derivations".
func TestUnannotatedEntryNormalization(t *testing.T) {
	s := buildRepro()
	g, err := pathid.Build(s, pathexpr.MustParse("/d//d"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := TranslateOpts(g, Options{NoFallback: true})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if res.Query == nil || len(res.Query.Selects) == 0 {
		t.Fatal("no query generated")
	}
	// The shared-node region must reference the pc=2 lead condition pushed
	// down from the structural entry.
	if !strings.Contains(res.Query.SQL(), "pc = 2") {
		t.Errorf("pushed-down lead condition missing:\n%s", res.Query.SQL())
	}
}

// TestPredicateChildAxisIsDirect is the regression test for a second
// stress-hunt find (docgen seed 6448): "[a='v']" is a child-axis test, so a
// value leaf nested under an unannotated structural node — whose text lands
// in the same tuple column — must NOT satisfy the predicate. The translation
// must treat such nodes as unable to satisfy it.
func TestPredicateChildAxisIsDirect(t *testing.T) {
	s := schema.NewBuilder("childaxis").
		Node("r", "r", schema.Rel("R0")).
		Node("d1", "d", schema.Rel("R1")).
		Node("s", "ss").
		Node("a1", "a", schema.Col("val")). // grandchild of d via structural ss
		Node("d2", "d", schema.Rel("R1")).
		Node("a2", "a", schema.Col("val")). // direct child of d2
		Root("r").
		Edge("r", "d1").
		Edge("d1", "s").
		Edge("s", "a1").
		Edge("r", "d2").
		Edge("d2", "a2").
		MustBuild()
	doc, err := xmltree.ParseString(
		`<r><d><ss><a>v</a></ss></d><d><a>v</a></d></r>`)
	if err != nil {
		t.Fatal(err)
	}
	// Only the second d (direct a child) satisfies //d[a='v'].
	store := relational.NewStore()
	results, err := shred.ShredAll(s, store, shred.Options{}, doc)
	if err != nil {
		t.Fatal(err)
	}
	q := pathexpr.MustParse("//d[a='v']")
	wantVals, err := shred.EvalReferenceAll(results, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantVals) != 1 {
		t.Fatalf("reference found %d matches, want 1", len(wantVals))
	}
	// Both d nodes share (R1, val), but d1's val is fed by a structural
	// *grandchild*: a column selection cannot distinguish the two sources,
	// so the translation must REJECT the query rather than return wrong
	// rows (which both the naive and pruned SQL would).
	if _, err := pathid.Build(s, q); err == nil {
		t.Fatal("polluted predicate column accepted; translation would be unsound")
	}
	// On a clean mapping — each d stores its direct a child in its own
	// relation's column — the same query translates and is correct.
	clean := schema.NewBuilder("childaxis2").
		Node("r", "r", schema.Rel("R0")).
		Node("d1", "d", schema.Rel("R1")).
		Node("a1", "a", schema.Col("val")).
		Node("d2", "d", schema.Rel("R2")).
		Node("a2", "a", schema.Col("val")).
		Root("r").
		Edge("r", "d1").
		Edge("d1", "a1").
		Edge("r", "d2").
		Edge("d2", "a2").
		MustBuild()
	cdoc, err := xmltree.ParseString(`<r><d><a>v</a></d><d><a>x</a></d></r>`)
	if err != nil {
		t.Fatal(err)
	}
	cstore := relational.NewStore()
	if _, err := shred.ShredAll(clean, cstore, shred.Options{}, cdoc); err != nil {
		t.Fatal(err)
	}
	g, err := pathid.Build(clean, q)
	if err != nil {
		t.Fatal(err)
	}
	for name, translateFn := range map[string]func() (*sqlast.Query, error){
		"naive": func() (*sqlast.Query, error) { return translate.Naive(g) },
		"pruned": func() (*sqlast.Query, error) {
			r, err := TranslateOpts(g, Options{})
			if err != nil {
				return nil, err
			}
			return r.Query, nil
		},
	} {
		sqlq, err := translateFn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := engine.Execute(cstore, sqlq)
		if err != nil {
			t.Fatalf("%s exec: %v", name, err)
		}
		if res.Len() != 1 {
			t.Errorf("%s returned %d rows, want 1:\n%s", name, res.Len(), sqlq.SQL())
		}
	}
}
