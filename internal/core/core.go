package core

import (
	"errors"
	"fmt"

	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
)

// Options tune the lossless-constraint-aware translator; the zero value is
// the paper's algorithm.
type Options struct {
	// Unroll bounds cycle traversal during pattern enumeration for
	// recursive schemas (0 means DefaultUnroll).
	Unroll int
	// DisableEdgeAnnotOpt turns off the §4.3 edge-annotation optimization
	// (ablation): suffixes then always include the parent join.
	DisableEdgeAnnotOpt bool
	// CombineIdenticalOnly restricts combinability to byte-identical
	// templates (ablation of §4.4's disjunctive merging).
	CombineIdenticalOnly bool
	// NoFallback makes translation fail instead of silently reverting to
	// the baseline when safe suffixes cannot be established.
	NoFallback bool
	// FactorPrefixes applies the shared-work rewrite after translation:
	// UNION ALL branches differing only in one literal collapse into an IN,
	// and maximal common join prefixes hoist into a WITH CTE. The flag is
	// part of the plan-cache key (the cache keys on the printed Options).
	FactorPrefixes bool
	// Adaptive makes translation also produce the baseline plan
	// (Result.Baseline) so a cost-based chooser — translate.ChoosePlan,
	// driven by statistics the translator itself does not have — can pick
	// between the pruned and baseline translations per query. The flag is
	// part of the plan-cache key like every other option; the chosen knob
	// vector and stats fingerprint are appended by the planner.
	Adaptive bool
}

// Result is a completed translation.
type Result struct {
	// Query is the generated SQL.
	Query *sqlast.Query
	// Fallback reports that pruning was abandoned and Query is the baseline
	// translation. This never happens for the paper's mappings; it guards
	// adversarial schemas whose suffixes cannot be disambiguated.
	Fallback bool
	// Classes describe the pruned PathSet (empty when Fallback).
	Classes []PrunedClass
	// Baseline is the naive translation, populated only under
	// Options.Adaptive (nil otherwise, and nil when Fallback already made
	// Query the baseline). It is unfactored: the adaptive chooser applies
	// rewrites to whichever plan it selects.
	Baseline *sqlast.Query
}

// Translate converts the PathId output into SQL, exploiting the "lossless
// from XML" constraint with the paper's default options.
func Translate(g *pathid.Graph) (*Result, error) { return TranslateOpts(g, Options{}) }

// TranslateOpts converts the PathId output into SQL under explicit options.
//
// The algorithm is Figure 3: the PathId result S_CP is pruned — every
// accepting node's root-to-leaf join chain is shortened to the lowest suffix
// whose SQL can only return result tuples (Figures 4 and 8) — and the pruned
// PathSet is partitioned into combinability classes, each emitted as a
// single SELECT or CTE program.
func TranslateOpts(g *pathid.Graph, opts Options) (*Result, error) {
	if g.Empty() {
		return &Result{Query: &sqlast.Query{}}, nil
	}
	unroll := opts.Unroll
	if unroll <= 0 {
		unroll = DefaultUnroll
	}

	pr := &pruner{
		dfa:        pathexpr.BuildPredDFA(g.Query),
		unroll:     unroll,
		useLeadOpt: !opts.DisableEdgeAnnotOpt,
	}
	if opts.CombineIdenticalOnly {
		pr.combineMode = combineIdenticalOnly
	}
	pr.schemaPaths = enumerateSchemaPaths(g.Schema, g.Query, pr.dfa, unroll)
	for _, a := range g.Accepts() {
		it, err := newItem(g, a)
		if err != nil {
			return nil, err
		}
		pr.items = append(pr.items, it)
	}

	query, classes, err := pr.translate()
	if err != nil {
		if !errors.Is(err, errCannotPrune) {
			return nil, err
		}
		if opts.NoFallback {
			return nil, fmt.Errorf("core: %w", err)
		}
		naive, nerr := translate.Naive(g)
		if nerr != nil {
			return nil, nerr
		}
		if opts.FactorPrefixes {
			naive, _ = translate.FactorSharedPrefixes(naive, g.Schema)
		}
		return &Result{Query: naive, Fallback: true}, nil
	}
	if opts.FactorPrefixes {
		query, _ = translate.FactorSharedPrefixes(query, g.Schema)
	}
	res := &Result{Query: query, Classes: classes}
	if opts.Adaptive {
		naive, nerr := translate.Naive(g)
		if nerr != nil {
			return nil, nerr
		}
		res.Baseline = naive
	}
	return res, nil
}

func (pr *pruner) translate() (*sqlast.Query, []PrunedClass, error) {
	if err := pr.run(); err != nil {
		return nil, nil, err
	}
	return pr.generate()
}
