package core

import (
	"math/rand"
	"testing"

	"xmlsql/internal/relational"
)

func mk(rootComplete bool, rels []string, sels []map[string]relational.Value) *Pattern {
	if sels == nil {
		sels = make([]map[string]relational.Value, len(rels))
		for i := range sels {
			sels[i] = map[string]relational.Value{}
		}
	}
	return &Pattern{RelSeq: rels, Sels: sels, RootComplete: rootComplete}
}

func TestConflictsSuffixRule(t *testing.T) {
	a := mk(false, []string{"InCat"}, nil)
	b := mk(true, []string{"Site", "Item", "InCat"}, nil)
	if !Conflicts(a, b) {
		t.Error("scan pattern must conflict with a longer path ending in the same relation")
	}
	c := mk(true, []string{"Site", "Item", "Other"}, nil)
	if Conflicts(a, c) {
		t.Error("different last relations cannot conflict")
	}
	d := mk(false, []string{"Item", "InCat"}, nil)
	e := mk(true, []string{"Site", "InCat"}, nil)
	if Conflicts(d, e) {
		t.Error("mismatched relation at aligned position must not conflict")
	}
}

func TestConflictsSelectionCompatibility(t *testing.T) {
	pc1 := map[string]relational.Value{"parentcode": relational.Int(1)}
	pc2 := map[string]relational.Value{"parentcode": relational.Int(2)}
	empty := map[string]relational.Value{}

	a := mk(false, []string{"Item", "InCat"}, []map[string]relational.Value{pc1, empty})
	b := mk(true, []string{"Site", "Item", "InCat"}, []map[string]relational.Value{empty, pc2, empty})
	if Conflicts(a, b) {
		t.Error("contradictory parentcode selections must not conflict")
	}
	c := mk(true, []string{"Site", "Item", "InCat"}, []map[string]relational.Value{empty, pc1, empty})
	if !Conflicts(a, c) {
		t.Error("matching parentcode selections must conflict")
	}
	// Unspecified vs specified is compatible — the Figure 5 trap.
	d := mk(false, []string{"Item", "InCat"}, []map[string]relational.Value{empty, empty})
	if !Conflicts(d, b) {
		t.Error("unspecified selection must be compatible with any value")
	}
}

func TestConflictsRootCompleteRule(t *testing.T) {
	// A root-complete pattern shorter than the other cannot conflict: its
	// tuples' ancestor chains end at the document root.
	short := mk(true, []string{"Edge", "Edge"}, nil)
	long := mk(true, []string{"Edge", "Edge", "Edge"}, nil)
	if Conflicts(short, long) {
		t.Error("shorter root-complete pattern must not conflict with a longer one")
	}
	// But equal-length root-complete patterns can.
	other := mk(true, []string{"Edge", "Edge"}, nil)
	if !Conflicts(short, other) {
		t.Error("equal-length root-complete patterns with compatible selections must conflict")
	}
	// And a non-root-complete short pattern does conflict.
	suffix := mk(false, []string{"Edge", "Edge"}, nil)
	if !Conflicts(suffix, long) {
		t.Error("suffix pattern must conflict with a longer path")
	}
}

func TestConflictsSymmetric(t *testing.T) {
	rels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(3))
	randomPattern := func() *Pattern {
		n := 1 + rng.Intn(3)
		seq := make([]string, n)
		sels := make([]map[string]relational.Value, n)
		for i := range seq {
			seq[i] = rels[rng.Intn(len(rels))]
			sels[i] = map[string]relational.Value{}
			if rng.Intn(2) == 0 {
				sels[i]["pc"] = relational.Int(int64(rng.Intn(3)))
			}
		}
		return &Pattern{RelSeq: seq, Sels: sels, RootComplete: rng.Intn(2) == 0}
	}
	for i := 0; i < 2000; i++ {
		p, q := randomPattern(), randomPattern()
		if Conflicts(p, q) != Conflicts(q, p) {
			t.Fatalf("Conflicts not symmetric for %s vs %s", p, q)
		}
	}
}

func TestConflictsReflexive(t *testing.T) {
	p := mk(false, []string{"A", "B"}, nil)
	if !Conflicts(p, p) {
		t.Error("a pattern must conflict with itself")
	}
}

func TestPatternString(t *testing.T) {
	p := mk(true, []string{"Item", "InCat"}, []map[string]relational.Value{
		{"parentcode": relational.Int(1)}, {},
	})
	want := "^Item{parentcode=1}->InCat"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
