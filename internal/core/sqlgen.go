package core

import (
	"fmt"
	"sort"
	"strings"

	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
)

// PrunedClass describes one combinability equivalence class of the pruned
// PathSet — diagnostics for tests, the CLI, and EXPERIMENTS.md.
type PrunedClass struct {
	// Kind is "linear" (simple-path suffixes merged into one SELECT) or
	// "graph" (a DAG/recursive region emitted as a CTE program).
	Kind string
	// Members is the number of PathSet entries merged into this class.
	Members int
	// RelSeq is the relation sequence joined by the class's query (linear
	// classes only).
	RelSeq []string
	// Nodes are the schema-node names of the representative region.
	Nodes []string
}

// String renders the class for diagnostics: kind, member count, and the
// schema nodes of the representative region.
func (c PrunedClass) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s class, %d member", c.Kind, c.Members)
	if c.Members != 1 {
		b.WriteString("s")
	}
	if len(c.RelSeq) > 0 {
		fmt.Fprintf(&b, ", joins %s", strings.Join(c.RelSeq, " ⋈ "))
	}
	if len(c.Nodes) > 0 {
		fmt.Fprintf(&b, ", nodes {%s}", strings.Join(c.Nodes, ","))
	}
	return b.String()
}

// generate partitions the pruned items into combinability classes and emits
// the final query: one SELECT per linear class (shared joins, disjoined
// per-path conditions — §4.4) and one CTE program per graph class, all
// UNION ALLed together.
func (pr *pruner) generate() (*sqlast.Query, []PrunedClass, error) {
	if len(pr.items) == 0 {
		return &sqlast.Query{}, nil, nil
	}
	g := pr.items[0].g
	anchorNeeded := translate.NeedsAnchor(g.Schema)

	type class struct {
		key    string
		items  []*item
		seqs   [][]int
		linear bool
	}
	index := map[string]*class{}
	var order []string

	for _, it := range pr.items {
		var key string
		var seq []int
		seqL, isLin := it.linear()
		if isLin {
			pat := it.cpPathPattern(it.leadOf(seqL[0]), seqL, seqL[0] == g.Start())
			if pat == nil {
				return nil, nil, fmt.Errorf("core: cannot build pattern for linear suffix")
			}
			key = fmt.Sprintf("L|%v|%s.%s|%s", pat.RootComplete, it.resultRel, it.resultCol, strings.Join(pat.RelSeq, ","))
			seq = seqL
		} else {
			key = "G|" + it.templateKey(pr.unroll)
		}
		c, ok := index[key]
		if !ok {
			c = &class{key: key, linear: isLin}
			index[key] = c
			order = append(order, key)
		}
		c.items = append(c.items, it)
		c.seqs = append(c.seqs, seq)
	}

	q := &sqlast.Query{}
	var classes []PrunedClass
	for ci, key := range order {
		c := index[key]
		rep := c.items[0]
		desc := PrunedClass{Members: len(c.items)}

		if c.linear {
			desc.Kind = "linear"
			rootComplete := c.seqs[0][0] == g.Start()
			anchored := rootComplete && anchorNeeded
			specs := make([]translate.PathSpec, len(c.items))
			for i, it := range c.items {
				specs[i] = it.pathSpec(c.seqs[i], anchored)
			}
			sel, err := translate.BuildCombinedSelect(g, specs)
			if err != nil {
				return nil, nil, err
			}
			q.Selects = append(q.Selects, sel)
			desc.RelSeq = translate.PathRelSeq(g, c.seqs[0])
			desc.Nodes = nodeNames(rep, c.seqs[0])
		} else {
			desc.Kind = "graph"
			entries, err := normalizeEntries(rep)
			if err != nil {
				return nil, nil, err
			}
			startEntry := false
			otherEntry := false
			for e := range entries {
				if e == g.Start() {
					startEntry = true
				} else {
					otherEntry = true
				}
			}
			if anchorNeeded && startEntry && otherEntry {
				return nil, nil, errCannotPrune // mixed anchoring; take the baseline
			}
			sg := &translate.Subgraph{
				G:          g,
				Nodes:      rep.nodes,
				Entries:    entries,
				Anchored:   anchorNeeded && startEntry,
				Results:    []int{rep.result},
				NamePrefix: fmt.Sprintf("c%d_", ci),
			}
			part, err := sg.Query()
			if err != nil {
				return nil, nil, err
			}
			q.With = append(q.With, part.With...)
			q.Selects = append(q.Selects, part.Selects...)
			var ids []int
			for id := range rep.nodes {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			desc.Nodes = nodeNames(rep, ids)
		}
		classes = append(classes, desc)
	}
	return q, classes, nil
}

// normalizeEntries converts the item's entry set into the form the SQL
// generator scans: entries must be tuple nodes (or column-only leaves).
// Growth can leave an *unannotated* structural node as a region boundary;
// its entry is equivalent to entries at the next annotated nodes below it,
// with the traversed edge conditions as lead conditions — the same
// translation the pattern machinery already applies.
func normalizeEntries(it *item) (map[int][]schema.EdgeCond, error) {
	out := map[int][]schema.EdgeCond{}
	add := func(id int, lead []schema.EdgeCond) error {
		if prev, dup := out[id]; dup {
			if !condsEqual(prev, lead) {
				return errCannotPrune // would need disjunctive entry conditions
			}
			return nil
		}
		out[id] = lead
		return nil
	}
	for e, es := range it.entry {
		if it.g.SchemaNode(e).HasRelation() || it.g.SchemaNode(e).Column != "" {
			if err := add(e, es.lead); err != nil {
				return nil, err
			}
			continue
		}
		// Push the entry down through unannotated in-region nodes.
		var walk func(id int, conds []schema.EdgeCond) error
		walk = func(id int, conds []schema.EdgeCond) error {
			for _, ce := range it.g.Children(id) {
				if !it.nodes[ce.To] {
					continue
				}
				cconds := conds
				if ce.Cond != nil {
					cconds = append(append([]schema.EdgeCond(nil), conds...), *ce.Cond)
				}
				m := it.g.SchemaNode(ce.To)
				switch {
				case m.HasRelation():
					if err := add(ce.To, cconds); err != nil {
						return err
					}
				case m.Column != "":
					if len(cconds) > 0 {
						return errCannotPrune // condition with no owning tuple in region
					}
					if err := add(ce.To, nil); err != nil {
						return err
					}
				default:
					if err := walk(ce.To, cconds); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if err := walk(e, es.lead); err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, errCannotPrune
	}
	return out, nil
}

func condsEqual(a, b []schema.EdgeCond) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Column != b[i].Column || a[i].Neq != b[i].Neq || !a[i].Value.Identical(b[i].Value) {
			return false
		}
	}
	return true
}

func nodeNames(it *item, ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, it.g.SchemaNode(id).Name)
	}
	return out
}
