package core_test

import (
	"strings"
	"testing"

	"xmlsql/internal/core"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// translateBoth returns the naive and pruned translations of query over s.
func translateBoth(t *testing.T, s *schema.Schema, query string) (*sqlast.Query, *core.Result) {
	t.Helper()
	g, err := pathid.Build(s, pathexpr.MustParse(query))
	if err != nil {
		t.Fatalf("pathid: %v", err)
	}
	naive, err := translate.Naive(g)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	pruned, err := core.TranslateOpts(g, core.Options{NoFallback: true})
	if err != nil {
		t.Fatalf("pruned translate: %v", err)
	}
	return naive, pruned
}

// checkEquivalence shreds doc, executes both translations, and compares
// them against each other and the reference evaluation.
func checkEquivalence(t *testing.T, s *schema.Schema, doc *xmltree.Document, query string) (naiveQ, prunedQ *sqlast.Query) {
	t.Helper()
	store := relational.NewStore()
	results, err := shred.ShredAll(s, store, shred.Options{}, doc)
	if err != nil {
		t.Fatalf("shred: %v", err)
	}
	naive, pruned := translateBoth(t, s, query)

	nres, err := engine.Execute(store, naive)
	if err != nil {
		t.Fatalf("execute naive:\n%s\nerror: %v", naive.SQL(), err)
	}
	pres, err := engine.Execute(store, pruned.Query)
	if err != nil {
		t.Fatalf("execute pruned:\n%s\nerror: %v", pruned.Query.SQL(), err)
	}
	if !nres.MultisetEqual(pres) {
		t.Fatalf("query %s: naive and pruned results differ:\n%s\nnaive SQL:\n%s\npruned SQL:\n%s",
			query, nres.MultisetDiff(pres), naive.SQL(), pruned.Query.SQL())
	}
	wantVals, err := shred.EvalReferenceAll(results, pathexpr.MustParse(query))
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	want := &engine.Result{}
	for _, v := range wantVals {
		want.Rows = append(want.Rows, relational.Row{v})
	}
	if !pres.MultisetEqual(want) {
		t.Fatalf("query %s: pruned result differs from reference:\n%s\npruned SQL:\n%s",
			query, pres.MultisetDiff(want), pruned.Query.SQL())
	}
	return naive, pruned.Query
}

// --- E1/E2: the §2 and §4.1 XMark examples -------------------------------

func TestQ1PrunesToScan(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	naive, pruned := checkEquivalence(t, s, doc, workloads.QueryQ1)

	nsh, psh := naive.Shape(), pruned.Shape()
	// SQ1^1: six branches with two joins each; SQ1^2: one branch, zero
	// joins — a scan of InCat.category.
	if nsh.Branches != 6 || nsh.Joins != 12 {
		t.Errorf("naive Q1 shape = %v, want 6 branches / 12 joins", nsh)
	}
	if psh.Branches != 1 || psh.Joins != 0 {
		t.Errorf("pruned Q1 shape = %v, want a single scan:\n%s", psh, pruned.SQL())
	}
	if !strings.Contains(pruned.SQL(), "from   InCat") {
		t.Errorf("pruned Q1 should scan InCat:\n%s", pruned.SQL())
	}
}

func TestQ2PrunesToSingleJoin(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	naive, pruned := checkEquivalence(t, s, doc, workloads.QueryQ2)

	// §4.1: "select category from Item I, InCat C where I.id = C.parentid
	// and I.parentCode = 1" — one join, no Site.
	psh := pruned.Shape()
	if psh.Branches != 1 || psh.Joins != 1 {
		t.Errorf("pruned Q2 shape = %v, want 1 branch / 1 join:\n%s", psh, pruned.SQL())
	}
	if strings.Contains(pruned.SQL(), "Site") {
		t.Errorf("pruned Q2 must not join Site:\n%s", pruned.SQL())
	}
	if !strings.Contains(pruned.SQL(), "parentcode = 1") {
		t.Errorf("pruned Q2 must select parentcode = 1:\n%s", pruned.SQL())
	}
	if nsh := naive.Shape(); nsh.Joins != 2 {
		t.Errorf("naive Q2 shape = %v, want 2 joins", nsh)
	}
}

// --- E3: the Figure 5 mapping and its duplicate trap ----------------------

func TestQ3AvoidsDuplicates(t *testing.T) {
	s := workloads.S1()
	doc := workloads.GenerateS1(12, 5)

	// Adversarial instance: unspecified pc columns are filled with 1, the
	// value that makes the unsafe PathSet1 translation SQ3^1 return
	// duplicates (§4.4).
	store := relational.NewStore()
	opts := shred.Options{FillUnspecified: func(rel, col string, kind relational.Kind) relational.Value {
		return relational.Int(1)
	}}
	results, err := shred.ShredAll(s, store, opts, doc)
	if err != nil {
		t.Fatalf("shred: %v", err)
	}

	naive, pruned := translateBoth(t, s, workloads.QueryQ3)
	nres, err := engine.Execute(store, naive)
	if err != nil {
		t.Fatalf("naive execute: %v", err)
	}
	pres, err := engine.Execute(store, pruned.Query)
	if err != nil {
		t.Fatalf("pruned execute:\n%s\n%v", pruned.Query.SQL(), err)
	}
	if !nres.MultisetEqual(pres) {
		t.Fatalf("naive vs pruned mismatch on adversarial instance:\n%s\npruned SQL:\n%s",
			nres.MultisetDiff(pres), pruned.Query.SQL())
	}
	wantVals, err := shred.EvalReferenceAll(results, pathexpr.MustParse(workloads.QueryQ3))
	if err != nil {
		t.Fatal(err)
	}
	if len(wantVals) != 3*12 {
		t.Fatalf("reference returned %d x-values, want %d", len(wantVals), 3*12)
	}
	if pres.Len() != len(wantVals) {
		t.Errorf("pruned returned %d rows, want %d (duplicates would inflate this):\n%s",
			pres.Len(), len(wantVals), pruned.Query.SQL())
	}

	// The pruned query must stay a single R2 ⋈ R3 join (the SQ3^2 shape).
	psh := pruned.Query.Shape()
	if psh.Branches != 1 || psh.Joins != 1 {
		t.Errorf("pruned Q3 shape = %v, want 1 branch / 1 join (SQ3^2):\n%s", psh, pruned.Query.SQL())
	}
	if strings.Contains(pruned.Query.SQL(), "R1") {
		t.Errorf("pruned Q3 must not join R1:\n%s", pruned.Query.SQL())
	}
}

func TestUnsafePathSet1WouldDuplicate(t *testing.T) {
	// Reconstruct SQ3^1 (the PathSet1 translation the paper shows is
	// incorrect) by hand and demonstrate the duplicates on the adversarial
	// instance — the second while loop exists precisely to prevent this.
	s := workloads.S1()
	doc := workloads.GenerateS1(6, 11)
	store := relational.NewStore()
	opts := shred.Options{FillUnspecified: func(rel, col string, kind relational.Kind) relational.Value {
		return relational.Int(1)
	}}
	if _, err := shred.ShredAll(s, store, opts, doc); err != nil {
		t.Fatal(err)
	}
	sq31 := &sqlast.Query{Selects: []*sqlast.Select{
		{
			Cols:  []sqlast.SelectItem{sqlast.Col("R3", "C1")},
			From:  []sqlast.FromItem{sqlast.From("R3", "R3")},
			Where: sqlast.Eq(sqlast.ColRef{Table: "R3", Column: "pc"}, sqlast.IntLit(1)),
		},
		{
			Cols: []sqlast.SelectItem{sqlast.Col("R3", "C1")},
			From: []sqlast.FromItem{sqlast.From("R2", "R2"), sqlast.From("R3", "R3")},
			Where: sqlast.Conj(
				sqlast.Eq(sqlast.ColRef{Table: "R3", Column: "parentid"}, sqlast.ColRef{Table: "R2", Column: "id"}),
				sqlast.In{Left: sqlast.ColRef{Table: "R2", Column: "pc"}, List: []sqlast.Lit{sqlast.IntLit(2), sqlast.IntLit(3)}},
			),
		},
	}}
	res, err := engine.Execute(store, sq31)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * 6 // three x elements per group
	if res.Len() <= want {
		t.Errorf("SQ3^1 returned %d rows; expected more than %d (duplicates) on the adversarial instance", res.Len(), want)
	}
}

// --- E4: the Figure 6 DAG mapping -----------------------------------------

func TestDAGTranslation(t *testing.T) {
	s := workloads.S2()
	doc := workloads.GenerateS2(8, 13)
	for _, q := range []string{"//s/t1", "//t2", "/root/m1/s/t1", "//s", "//m2//t2", "//t1"} {
		t.Run(q, func(t *testing.T) { checkEquivalence(t, s, doc, q) })
	}
}

func TestDAGPruningSavesJoins(t *testing.T) {
	s := workloads.S2()
	doc := workloads.GenerateS2(8, 13)
	naive, pruned := checkEquivalence(t, s, doc, "//s/t1")
	// All t1 elements live under shared node 21: a scan of T1 suffices.
	psh := pruned.Shape()
	if psh.Joins >= naive.Shape().Joins {
		t.Errorf("pruned //s/t1 should use fewer joins than naive (%v vs %v):\n%s",
			psh, naive.Shape(), pruned.SQL())
	}
	if psh.Branches != 1 || psh.Joins != 0 {
		t.Errorf("pruned //s/t1 = %v, want a single T1 scan:\n%s", psh, pruned.SQL())
	}
}

// --- E5/E6: the recursive schema S3 (Figures 7 and 9) ---------------------

func TestS3Equivalence(t *testing.T) {
	s := workloads.S3()
	doc := workloads.GenerateS3(workloads.S3Config{Fanout: 2, MaxDepth: 5, Seed: 3})
	for _, q := range []string{
		workloads.QueryQ4,
		workloads.QueryQ5,
		workloads.QueryQ6,
		workloads.QueryQ7,
		"//E10/elemid",
		"//E9//elemid",
		"/E0/E2/E8/E9/E10/elemid",
		"//E7//E10/elemid",
		"//E8//E10/elemid",
	} {
		t.Run(q, func(t *testing.T) { checkEquivalence(t, s, doc, q) })
	}
}

func TestQ4PrunedShape(t *testing.T) {
	s := workloads.S3()
	doc := workloads.GenerateS3(workloads.DefaultS3Config())
	naive, pruned := checkEquivalence(t, s, doc, workloads.QueryQ4)
	// P_CP^4 = <E6, E10, elemid>: one R6 ⋈ R10 join, no recursion — while
	// the naive query needs CTEs for the shared E3/E6 computation.
	psh := pruned.Shape()
	if psh.Branches != 1 || psh.Joins != 1 || psh.CTEs != 0 {
		t.Errorf("pruned Q4 shape = %v, want 1 branch / 1 join / no CTEs:\n%s", psh, pruned.SQL())
	}
	if naive.Shape().CTEs == 0 {
		t.Errorf("naive Q4 should need CTEs for the shared DAG region, got %v:\n%s", naive.Shape(), naive.SQL())
	}
}

func TestQ5PrunedStopsAtR1(t *testing.T) {
	s := workloads.S3()
	doc := workloads.GenerateS3(workloads.DefaultS3Config())
	_, pruned := checkEquivalence(t, s, doc, workloads.QueryQ5)
	// §5.2: the pruned region grows until the join with R1 (instead of R2)
	// distinguishes it from the non-matching E2 routes; R0 is not needed.
	sql := pruned.SQL()
	if !strings.Contains(sql, "R1") {
		t.Errorf("pruned Q5 should join R1:\n%s", sql)
	}
	if strings.Contains(sql, "R0") {
		t.Errorf("pruned Q5 should not need R0:\n%s", sql)
	}
	if pruned.Shape().Recursive {
		t.Errorf("pruned Q5 should not be recursive:\n%s", sql)
	}
}

func TestQ6PrunesToTwoRelations(t *testing.T) {
	s := workloads.S3()
	doc := workloads.GenerateS3(workloads.DefaultS3Config())
	naive, pruned := checkEquivalence(t, s, doc, workloads.QueryQ6)
	// Figure 9: "the join between relations R9 and R10 suffices".
	psh := pruned.Shape()
	if psh.Branches != 1 || psh.Joins != 1 || psh.Recursive {
		t.Errorf("pruned Q6 shape = %v, want a single R9 ⋈ R10 join:\n%s", psh, pruned.SQL())
	}
	if !naive.Shape().Recursive {
		t.Errorf("naive Q6 should be recursive, got %v", naive.Shape())
	}
}

func TestQ7PrunedSavesRootJoin(t *testing.T) {
	s := workloads.S3()
	doc := workloads.GenerateS3(workloads.DefaultS3Config())
	naive, pruned := checkEquivalence(t, s, doc, workloads.QueryQ7)
	// §5.2: the pruned region enters the recursive component and stops at
	// E2, "saving a single join operation with relation R0".
	if strings.Contains(pruned.SQL(), "R0") {
		t.Errorf("pruned Q7 should not reference R0:\n%s", pruned.SQL())
	}
	if !strings.Contains(pruned.SQL(), "R2") {
		t.Errorf("pruned Q7 should reference R2:\n%s", pruned.SQL())
	}
	if !pruned.Shape().Recursive {
		t.Errorf("pruned Q7 still spans the recursive component, want recursive SQL:\n%s", pruned.SQL())
	}
	if !strings.Contains(naive.SQL(), "R0") {
		t.Errorf("naive Q7 should reference R0:\n%s", naive.SQL())
	}
}

// --- E7: schema-oblivious Edge storage (§5.3) ------------------------------

func TestQ8EdgeMapping(t *testing.T) {
	base := workloads.XMarkFull()
	es, err := shred.EdgeSchemaFor(base)
	if err != nil {
		t.Fatal(err)
	}
	doc := workloads.GenerateXMarkFull(workloads.DefaultXMarkConfig())
	naive, pruned := checkEquivalence(t, es, doc, workloads.QueryQ8)

	// §5.3: the pruned query is a 2-way self-join of Edge on
	// tag='InCategory' / tag='Category'; the naive query is a union of six
	// multiway self-joins.
	psh := pruned.Shape()
	if psh.Branches != 1 || psh.Joins != 1 {
		t.Errorf("pruned Q8 shape = %v, want one 2-way self-join:\n%s", psh, pruned.SQL())
	}
	sql := pruned.SQL()
	if !strings.Contains(sql, "'InCategory'") || !strings.Contains(sql, "'Category'") {
		t.Errorf("pruned Q8 should select on the two tags:\n%s", sql)
	}
	nsh := naive.Shape()
	if nsh.Branches != 6 || nsh.Joins != 6*5 {
		t.Errorf("naive Q8 shape = %v, want 6 branches of 6-way self-joins", nsh)
	}
}

func TestEdgeMappingEquivalence(t *testing.T) {
	base := workloads.XMarkFull()
	es, err := shred.EdgeSchemaFor(base)
	if err != nil {
		t.Fatal(err)
	}
	doc := workloads.GenerateXMarkFull(workloads.DefaultXMarkConfig())
	for _, q := range []string{
		"//Category",
		"/Site/Categories/Category",
		"/Site/Regions/Africa/Item/name",
		"//Item//Category",
		"/Site",
	} {
		t.Run(q, func(t *testing.T) { checkEquivalence(t, es, doc, q) })
	}
}

// --- ADEX -------------------------------------------------------------------

func TestADEXEquivalence(t *testing.T) {
	s := workloads.ADEX()
	doc := workloads.GenerateADEX(workloads.DefaultADEXConfig())
	for _, q := range []string{
		workloads.QueryAdexAllPhones,
		workloads.QueryAdexAllTitles,
		workloads.QueryAdexVehicleEmails,
		workloads.QueryAdexPrices,
	} {
		t.Run(q, func(t *testing.T) { checkEquivalence(t, s, doc, q) })
	}
}

func TestADEXPhonesPruneToScan(t *testing.T) {
	s := workloads.ADEX()
	doc := workloads.GenerateADEX(workloads.DefaultADEXConfig())
	naive, pruned := checkEquivalence(t, s, doc, workloads.QueryAdexAllPhones)
	if sh := pruned.Shape(); sh.Branches != 1 || sh.Joins != 0 {
		t.Errorf("pruned //Ad/Contact/Phone = %v, want a Contact scan:\n%s", sh, pruned.SQL())
	}
	if sh := naive.Shape(); sh.Branches != 4 {
		t.Errorf("naive //Ad/Contact/Phone = %v, want 4 branches", sh)
	}
}

// --- wildcard steps --------------------------------------------------------

func TestWildcardQueries(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	for _, q := range []string{
		"/Site/*/Africa/Item/name",
		"/Site/Regions/*/Item/InCategory/Category",
		"//Item/*/Category",
	} {
		t.Run(q, func(t *testing.T) { checkEquivalence(t, s, doc, q) })
	}
}

func TestWildcardOverRecursiveSchema(t *testing.T) {
	s := workloads.S3()
	doc := workloads.GenerateS3(workloads.DefaultS3Config())
	for _, q := range []string{
		"/E0/*/E3/E4/E6/E10/elemid",
		"//E9/*/elemid",
	} {
		t.Run(q, func(t *testing.T) { checkEquivalence(t, s, doc, q) })
	}
}

// --- empty store -----------------------------------------------------------

func TestTranslationsOnEmptyStore(t *testing.T) {
	// Both translations over a store with created-but-empty tables.
	s := workloads.XMark()
	store := relational.NewStore()
	if err := s.CreateTables(store); err != nil {
		t.Fatal(err)
	}
	naive, pruned := translateBoth(t, s, workloads.QueryQ1)
	nres, err := engine.Execute(store, naive)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := engine.Execute(store, pruned.Query)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Len() != 0 || pres.Len() != 0 {
		t.Errorf("empty store returned rows: naive %d, pruned %d", nres.Len(), pres.Len())
	}
}

// --- fallback options ------------------------------------------------------

func TestTranslateOptionsAblations(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	store := relational.NewStore()
	results, err := shred.ShredAll(s, store, shred.Options{}, doc)
	if err != nil {
		t.Fatal(err)
	}
	q := pathexpr.MustParse(workloads.QueryQ2)
	g, err := pathid.Build(s, q)
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]core.Options{
		"no-lead-opt":    {DisableEdgeAnnotOpt: true, NoFallback: true},
		"identical-only": {CombineIdenticalOnly: true, NoFallback: true},
		"unroll-1":       {Unroll: 1, NoFallback: true},
		"unroll-5":       {Unroll: 5, NoFallback: true},
	} {
		t.Run(name, func(t *testing.T) {
			res, err := core.TranslateOpts(g, opts)
			if err != nil {
				t.Fatalf("%v: %v", opts, err)
			}
			got, err := engine.Execute(store, res.Query)
			if err != nil {
				t.Fatalf("exec: %v\n%s", err, res.Query.SQL())
			}
			wantVals, err := shred.EvalReferenceAll(results, q)
			if err != nil {
				t.Fatal(err)
			}
			want := &engine.Result{}
			for _, v := range wantVals {
				want.Rows = append(want.Rows, relational.Row{v})
			}
			if !got.MultisetEqual(want) {
				t.Errorf("ablation %s wrong:\n%s", name, res.Query.SQL())
			}
		})
	}
}
