package core

import (
	"fmt"
	"sort"
	"strings"

	"xmlsql/internal/pathid"
	"xmlsql/internal/schema"
	"xmlsql/internal/translate"
)

// item is one PathSet member: the current suffix region of the cross-product
// schema kept for one accepting node. For tree-shaped regions it is a simple
// path; for DAG/recursive regions it is a graph path (§5.2) — a subgraph
// with entry nodes. Growing "one level" follows the paper: first try the
// incoming edge annotation alone (the §4.3 optimization), then include the
// parent node; recursive components are absorbed whole.
type item struct {
	g      *pathid.Graph
	nodes  map[int]bool
	entry  map[int]*entryState
	result int // the accepting cross-product node

	resultRel string
	resultCol string
}

type entryState struct {
	lead      []schema.EdgeCond
	leadTried bool
}

func newItem(g *pathid.Graph, accept int) (*item, error) {
	rel, col, err := g.Schema.Annot(g.Node(accept).Schema)
	if err != nil {
		return nil, err
	}
	return &item{
		g:         g,
		nodes:     map[int]bool{accept: true},
		entry:     map[int]*entryState{accept: {}},
		result:    accept,
		resultRel: rel,
		resultCol: col,
	}, nil
}

// grow advances the item one level (Fig. 4 step 6 / Fig. 8 steps 6 and 13).
// Each entry first tries the incoming edge annotation alone (the §4.3
// optimization, when useLeadOpt is set), then includes every cross-product
// parent. Recursive components are absorbed over successive rounds: adding a
// component member makes its in-component parents entries, which the
// boundary recomputation then folds inward until the whole component is
// interior — converging to §5.2's "include the entire recursive component".
// It returns false when the item cannot grow further (every entry is the
// cross-product start).
func (it *item) grow(useLeadOpt bool) bool {
	grew := false
	entries := make([]int, 0, len(it.entry))
	for e := range it.entry {
		entries = append(entries, e)
	}
	sort.Ints(entries)

	for _, e := range entries {
		es := it.entry[e]
		parents := it.g.Parents(e)
		if len(parents) == 0 {
			continue // at the cross-product start; nothing above
		}
		// Stage a: the edge-annotation optimization — when the entry is
		// reached by exactly one edge and that edge carries a condition, the
		// condition alone may make the suffix safe, saving the parent join.
		if !es.leadTried {
			es.leadTried = true
			if useLeadOpt && len(parents) == 1 && parents[0].Cond != nil && len(es.lead) == 0 {
				es.lead = []schema.EdgeCond{*parents[0].Cond}
				grew = true
				continue
			}
		}
		// Stage b: include every cross-product parent (result elements can
		// reach the entry through any of them).
		delete(it.entry, e)
		for _, pe := range parents {
			if !it.nodes[pe.From] {
				it.nodes[pe.From] = true
				if _, ok := it.entry[pe.From]; !ok {
					it.entry[pe.From] = &entryState{}
				}
			}
		}
		grew = true
	}

	// Recompute entries: a node is an entry iff some cross-product parent
	// lies outside the region, or it is the start node. Nodes absorbed into
	// the interior lose entry status.
	for e := range it.entry {
		if !it.isBoundary(e) {
			delete(it.entry, e)
		}
	}
	if len(it.entry) == 0 {
		// Everything reachable is included; the start node is the entry.
		if _, ok := it.nodes[it.g.Start()]; !ok {
			it.nodes[it.g.Start()] = true
		}
		it.entry[it.g.Start()] = &entryState{leadTried: true}
	}
	return grew
}

func (it *item) isBoundary(id int) bool {
	if id == it.g.Start() {
		return true
	}
	for _, pe := range it.g.Parents(id) {
		if !it.nodes[pe.From] {
			return true
		}
	}
	return false
}

// leadOf returns the lead conditions of the given entry node.
func (it *item) leadOf(entry int) []schema.EdgeCond {
	if es, ok := it.entry[entry]; ok {
		return es.lead
	}
	return nil
}

// linear reports whether the region is a simple path: one entry, every node
// with at most one child inside the region, no node revisits. Linear items
// are the tree case of §4 and are merged with BuildCombinedSelect.
func (it *item) linear() ([]int, bool) {
	if len(it.entry) != 1 {
		return nil, false
	}
	var start int
	for e := range it.entry {
		start = e
	}
	var seq []int
	cur := start
	seen := map[int]bool{}
	for {
		if seen[cur] {
			return nil, false // cycle
		}
		seen[cur] = true
		seq = append(seq, cur)
		var next []int
		for _, e := range it.g.Children(cur) {
			if it.nodes[e.To] {
				next = append(next, e.To)
			}
		}
		switch len(next) {
		case 0:
			if cur != it.result {
				return nil, false
			}
			if len(seq) != len(it.nodes) {
				return nil, false
			}
			return seq, true
		case 1:
			cur = next[0]
		default:
			return nil, false
		}
	}
}

// patterns enumerates the retrieval patterns of the item's entry-to-result
// paths, with cycles unrolled at most `unroll` times per node.
func (it *item) patterns(unroll int) []*Pattern {
	var out []*Pattern
	visits := map[int]int{}
	var cur []int

	entries := make([]int, 0, len(it.entry))
	for e := range it.entry {
		entries = append(entries, e)
	}
	sort.Ints(entries)

	var rec func(id int)
	var lead []schema.EdgeCond
	var rootComplete bool
	rec = func(id int) {
		if visits[id] >= unroll {
			return
		}
		visits[id]++
		cur = append(cur, id)
		defer func() {
			visits[id]--
			cur = cur[:len(cur)-1]
		}()
		if id == it.result {
			if pat := it.cpPathPattern(lead, cur, rootComplete); pat != nil {
				out = append(out, pat)
			}
		}
		for _, e := range it.g.Children(id) {
			if it.nodes[e.To] {
				rec(e.To)
			}
		}
	}
	for _, e := range entries {
		lead = it.entry[e].lead
		rootComplete = e == it.g.Start()
		rec(e)
	}
	return out
}

// cpPathPattern builds the pattern of one cross-product path (with entry
// lead conditions). Returns nil for degenerate paths without annotation.
func (it *item) cpPathPattern(lead []schema.EdgeCond, nodes []int, rootComplete bool) *Pattern {
	s := it.g.Schema
	pat := &Pattern{RootComplete: rootComplete}
	pending := append([]schema.EdgeCond(nil), lead...)
	for i, cpID := range nodes {
		if i > 0 {
			if e := cpEdgeBetween(it.g, nodes[i-1], cpID); e != nil && e.Cond != nil {
				pending = append(pending, *e.Cond)
			}
		}
		sn := it.g.SchemaNode(cpID)
		if !sn.HasRelation() {
			continue
		}
		occ := append(append([]schema.EdgeCond(nil), pending...), translate.NodeConds(it.g, cpID)...)
		pat.appendOcc(sn.Relation, occ)
		pending = nil
	}
	if len(pat.RelSeq) == 0 {
		// Bare column-only leaf: a scan of the owning relation.
		rel, _, err := s.Annot(it.g.Node(nodes[len(nodes)-1]).Schema)
		if err != nil {
			return nil
		}
		pat.appendOcc(rel, pending)
	}
	return pat
}

func cpEdgeBetween(g *pathid.Graph, from, to int) *pathid.Edge {
	for _, e := range g.Children(from) {
		if e.To == to {
			return &e
		}
	}
	return nil
}

// templateKey canonically describes the item's query template: the sorted
// multiset of its (bounded) path patterns plus its result annotation. Items
// with equal keys produce identical SQL and are emitted once — the §5.1
// notion of combinability restricted to exactly-matching templates.
func (it *item) templateKey(unroll int) string {
	pats := it.patterns(unroll)
	strs := make([]string, len(pats))
	for i, p := range pats {
		strs[i] = p.String()
	}
	sort.Strings(strs)
	return fmt.Sprintf("%s.%s|%d|%s", it.resultRel, it.resultCol, len(it.nodes), strings.Join(strs, ";"))
}

// pathSpec converts a linear item into the PathSpec consumed by the shared
// SQL generator.
func (it *item) pathSpec(seq []int, anchored bool) translate.PathSpec {
	var lead []schema.EdgeCond
	for _, es := range it.entry {
		lead = es.lead
	}
	return translate.PathSpec{Nodes: seq, LeadConds: lead, Anchored: anchored}
}
