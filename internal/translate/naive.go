package translate

import (
	"fmt"

	"xmlsql/internal/pathid"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// MaxEnumeratedPaths bounds explicit path enumeration for tree-shaped
// cross-product graphs; larger graphs use the CTE generator, mirroring [9]'s
// observation that path enumeration can be exponential for DAG schemas.
const MaxEnumeratedPaths = 4096

// NeedsAnchor reports whether translations over this mapping must pin the
// root alias with "parentid IS NULL": required exactly when the root's
// relation also stores non-root nodes (schema-oblivious Edge storage); a
// no-op — and therefore omitted, matching the paper's printed SQL — for
// conventional mappings.
func NeedsAnchor(s *schema.Schema) bool {
	root := s.RootNode()
	if !root.HasRelation() {
		return false
	}
	for _, n := range s.Nodes() {
		if n.ID != root.ID && n.Relation == root.Relation {
			return true
		}
	}
	return false
}

// Naive is the baseline translator of [9], with no use of the "lossless
// from XML" constraint: every matching path is translated from the schema
// root down. Tree-shaped cross-product graphs become a UNION ALL of
// root-to-leaf join queries (the SQ1^1 shape of §2); DAG and recursive
// graphs use WITH [RECURSIVE] common table expressions.
func Naive(g *pathid.Graph) (*sqlast.Query, error) {
	if g.Empty() {
		return &sqlast.Query{}, nil
	}
	anchored := NeedsAnchor(g.Schema)

	if CPIsTree(g) {
		paths, complete := g.EnumeratePaths(MaxEnumeratedPaths, 1)
		if complete {
			q := &sqlast.Query{}
			for _, p := range paths {
				sel, err := BuildPathSelect(g, PathSpec{Nodes: p, Anchored: anchored})
				if err != nil {
					return nil, err
				}
				q.Selects = append(q.Selects, sel)
			}
			return q, nil
		}
	}

	sg := &Subgraph{
		G:        g,
		Nodes:    map[int]bool{},
		Entries:  map[int][]schema.EdgeCond{g.Start(): nil},
		Anchored: anchored,
		Results:  g.Accepts(),
	}
	for _, n := range g.Nodes() {
		sg.Nodes[n.ID] = true
	}
	if !g.SchemaNode(g.Start()).HasRelation() {
		return nil, fmt.Errorf("translate: schema root %s is not relation-annotated", g.SchemaNode(g.Start()).Name)
	}
	return sg.Query()
}

// CPIsTree reports whether the cross-product graph is a tree (single parent
// everywhere, no cycles), the case where [9] emits plain unions of joins.
func CPIsTree(g *pathid.Graph) bool {
	if g.Empty() {
		return true
	}
	for _, n := range g.Nodes() {
		if len(g.Parents(n.ID)) > 1 {
			return false
		}
	}
	// Cycle check (a cycle through the root keeps every node at one parent).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(g.Nodes()))
	var visit func(int) bool
	visit = func(id int) bool {
		color[id] = gray
		for _, e := range g.Children(id) {
			switch color[e.To] {
			case gray:
				return true
			case white:
				if visit(e.To) {
					return true
				}
			}
		}
		color[id] = black
		return false
	}
	return !visit(g.Start())
}
