// Package translate implements XML-to-SQL query translation. It provides
// the shared SQL-generation machinery — SQL(p) construction for paths, the
// combinable-class SELECT merging of §4.4, and a CTE-program generator for
// DAG/recursive cross-product graphs — and the baseline translator of [9]
// (Krishnamurthy et al., ICDE 2004) used as the comparison point throughout
// the paper. The lossless-constraint-aware translator of the paper itself
// lives in internal/core and reuses this machinery for its SQLGen stage.
package translate

import (
	"fmt"
	"strings"

	"xmlsql/internal/pathid"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// Aliases generates unique, paper-style table aliases within one SELECT:
// "Site" -> S, "InCat" -> IC, "R3" -> R3, with numeric suffixes on clashes.
type Aliases struct {
	used map[string]bool
}

// NewAliases creates an empty alias generator.
func NewAliases() *Aliases { return &Aliases{used: map[string]bool{}} }

// For returns a fresh alias for the relation.
func (a *Aliases) For(rel string) string {
	base := aliasBase(rel)
	if !a.used[base] {
		a.used[base] = true
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", base, i)
		if !a.used[cand] {
			a.used[cand] = true
			return cand
		}
	}
}

func aliasBase(rel string) string {
	var b strings.Builder
	for i := 0; i < len(rel); i++ {
		c := rel[i]
		if (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			b.WriteByte(c)
		}
	}
	if b.Len() == 0 && len(rel) > 0 {
		return strings.ToUpper(rel[:1])
	}
	out := b.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "T" + out // identifiers cannot start with a digit
	}
	return out
}

// PathSpec describes a (suffix of a) cross-product path to turn into SQL.
type PathSpec struct {
	// Nodes are cross-product node ids, top-down. Interior nodes may be
	// unannotated; the last node is the result node.
	Nodes []int
	// LeadConds are selection conditions applied to the first
	// tuple-producing alias without joining its parent — the paper's
	// edge-annotation optimization (§4.3): "use the edge annotation to see
	// if that suffices" before going up to the parent node.
	LeadConds []schema.EdgeCond
	// Anchored adds "first.parentid IS NULL", pinning the first node to the
	// document root. Root-to-leaf translations over schema-oblivious (Edge)
	// storage need this; for schema-aware storage it is a no-op and omitted
	// unless the root's relation is shared with other nodes.
	Anchored bool
}

// pathAnalysis is the decomposition of SQL(p): the relation sequence (the
// paper's RelSeq), per-relation-occurrence selection conditions, and the
// result column on the last occurrence.
type pathAnalysis struct {
	relSeq []string
	// sels[i] are the edge-condition selections landing on occurrence i.
	sels [][]schema.EdgeCond
	// col is the projection column, on the last occurrence.
	col string
}

// analyzePath computes the relation sequence and condition placement of a
// path without committing to aliases.
func analyzePath(g *pathid.Graph, spec PathSpec) (*pathAnalysis, error) {
	if len(spec.Nodes) == 0 {
		return nil, fmt.Errorf("translate: empty path")
	}
	pa := &pathAnalysis{}
	var pending []schema.EdgeCond
	pending = append(pending, spec.LeadConds...)

	for i, cpID := range spec.Nodes {
		if i > 0 {
			edge := findEdge(g, spec.Nodes[i-1], cpID)
			if edge == nil {
				return nil, fmt.Errorf("translate: no cross-product edge %d -> %d", spec.Nodes[i-1], cpID)
			}
			if edge.Cond != nil {
				pending = append(pending, *edge.Cond)
			}
		}
		sn := g.SchemaNode(cpID)
		if !sn.HasRelation() {
			continue
		}
		pa.relSeq = append(pa.relSeq, sn.Relation)
		occ := pending
		if extra := NodeConds(g, cpID); len(extra) > 0 {
			occ = append(append([]schema.EdgeCond(nil), pending...), extra...)
		}
		pa.sels = append(pa.sels, occ)
		pending = nil
	}

	last := spec.Nodes[len(spec.Nodes)-1]
	rel, col, err := g.Schema.Annot(g.Node(last).Schema)
	if err != nil {
		return nil, err
	}
	if len(pa.relSeq) == 0 {
		// The path consists solely of a column-only value leaf (e.g. the
		// bare Category node): a scan of the owning relation.
		pa.relSeq = append(pa.relSeq, rel)
		pa.sels = append(pa.sels, pending)
		pending = nil
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("translate: dangling edge conditions past last tuple node on path")
	}
	if got := pa.relSeq[len(pa.relSeq)-1]; got != rel {
		return nil, fmt.Errorf("translate: result column %s.%s not owned by last relation %s on path", rel, col, got)
	}
	pa.col = col
	return pa, nil
}

// skeleton builds the FROM clause and join/anchor conditions shared by every
// path with this relation sequence, returning the aliases in occurrence
// order.
func skeleton(relSeq []string, anchored bool, sel *sqlast.Select) []string {
	al := NewAliases()
	aliases := make([]string, len(relSeq))
	var conj []sqlast.Expr
	for i, rel := range relSeq {
		aliases[i] = al.For(rel)
		sel.From = append(sel.From, sqlast.From(rel, aliases[i]))
		if i == 0 {
			if anchored {
				conj = append(conj, sqlast.IsNull{Left: sqlast.ColRef{Table: aliases[0], Column: schema.ParentIDColumn}})
			}
			continue
		}
		conj = append(conj, sqlast.Eq(
			sqlast.ColRef{Table: aliases[i], Column: schema.ParentIDColumn},
			sqlast.ColRef{Table: aliases[i-1], Column: schema.IDColumn}))
	}
	sel.Where = sqlast.Conj(conj...)
	return aliases
}

func selExprs(pa *pathAnalysis, aliases []string) []sqlast.Expr {
	var out []sqlast.Expr
	for i, conds := range pa.sels {
		for _, c := range conds {
			out = append(out, CondExpr(aliases[i], c))
		}
	}
	return out
}

// CondExpr renders a condition as a predicate on the given alias. Negative
// conditions (the unsatisfied branch of a step predicate) must also admit
// NULL — an element without the predicate child does not satisfy it either.
func CondExpr(alias string, c schema.EdgeCond) sqlast.Expr {
	col := sqlast.ColRef{Table: alias, Column: c.Column}
	if c.Neq {
		return sqlast.Disj(
			sqlast.Cmp{Op: sqlast.OpNe, Left: col, Right: sqlast.Lit{Value: c.Value}},
			sqlast.IsNull{Left: col},
		)
	}
	return sqlast.Eq(col, sqlast.Lit{Value: c.Value})
}

// NodeConds returns the selections on a cross-product node's own tuple: the
// mapping's node conditions plus any step-predicate conditions the product
// attached.
func NodeConds(g *pathid.Graph, cpID int) []schema.EdgeCond {
	sn := g.SchemaNode(cpID)
	pc := g.Node(cpID).PredConds
	if len(pc) == 0 {
		return sn.Conds
	}
	return append(append([]schema.EdgeCond(nil), sn.Conds...), pc...)
}

// BuildPathSelect constructs SQL(p) (§3.2): one alias per relation-annotated
// node on the path, parent-child joins between consecutive aliases, edge
// conditions as selections on the alias they land on, and a projection of
// the result node's annotation.
func BuildPathSelect(g *pathid.Graph, spec PathSpec) (*sqlast.Select, error) {
	pa, err := analyzePath(g, spec)
	if err != nil {
		return nil, err
	}
	sel := &sqlast.Select{}
	aliases := skeleton(pa.relSeq, spec.Anchored, sel)
	sel.Where = sqlast.Conj(sel.Where, sqlast.Conj(selExprs(pa, aliases)...))
	sel.Cols = []sqlast.SelectItem{sqlast.Col(aliases[len(aliases)-1], pa.col)}
	return sel, nil
}

// BuildCombinedSelect merges several combinable paths (identical RelSeq,
// identical result column, identical anchoring) into the single SELECT of
// §4.4: shared FROM and joins, WHERE = C_common AND (C_1 OR … OR C_n) where
// C_i are the conditions specific to path i. The "lossless from XML"
// constraint is what makes issuing one query for overlapping paths correct.
func BuildCombinedSelect(g *pathid.Graph, specs []PathSpec) (*sqlast.Select, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("translate: no paths to combine")
	}
	analyses := make([]*pathAnalysis, len(specs))
	for i, spec := range specs {
		pa, err := analyzePath(g, spec)
		if err != nil {
			return nil, err
		}
		analyses[i] = pa
		if i > 0 {
			if !sameStrings(pa.relSeq, analyses[0].relSeq) {
				return nil, fmt.Errorf("translate: paths are not combinable: RelSeq %v vs %v", pa.relSeq, analyses[0].relSeq)
			}
			if pa.col != analyses[0].col {
				return nil, fmt.Errorf("translate: paths are not combinable: columns %s vs %s", pa.col, analyses[0].col)
			}
			if specs[i].Anchored != specs[0].Anchored {
				return nil, fmt.Errorf("translate: paths are not combinable: anchoring differs")
			}
		}
	}

	sel := &sqlast.Select{}
	aliases := skeleton(analyses[0].relSeq, specs[0].Anchored, sel)

	// Split path conditions into the common core and per-path residue.
	exprSets := make([][]sqlast.Expr, len(specs))
	for i, pa := range analyses {
		exprSets[i] = selExprs(pa, aliases)
	}
	count := map[string]int{}
	repr := map[string]sqlast.Expr{}
	for _, set := range exprSets {
		seen := map[string]bool{}
		for _, e := range set {
			k := exprKey(e)
			if seen[k] {
				continue
			}
			seen[k] = true
			count[k]++
			repr[k] = e
		}
	}
	var common []sqlast.Expr
	commonSet := map[string]bool{}
	// Preserve first-path ordering for deterministic output.
	for _, e := range exprSets[0] {
		k := exprKey(e)
		if count[k] == len(specs) && !commonSet[k] {
			commonSet[k] = true
			common = append(common, e)
		}
	}
	var residues []sqlast.Expr
	anyEmpty := false
	seenResidue := map[string]bool{}
	for _, set := range exprSets {
		var rest []sqlast.Expr
		for _, e := range set {
			if !commonSet[exprKey(e)] {
				rest = append(rest, e)
			}
		}
		if len(rest) == 0 {
			anyEmpty = true
			continue
		}
		r := sqlast.Conj(rest...)
		k := exprKey(r)
		if seenResidue[k] {
			continue
		}
		seenResidue[k] = true
		residues = append(residues, r)
	}

	where := sqlast.Conj(sel.Where, sqlast.Conj(common...))
	if !anyEmpty && len(residues) > 0 {
		where = sqlast.Conj(where, sqlast.Disj(residues...))
	}
	sel.Where = where
	sel.Cols = []sqlast.SelectItem{sqlast.Col(aliases[len(aliases)-1], analyses[0].col)}
	return sel, nil
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func exprKey(e sqlast.Expr) string { return sqlast.ExprString(e) }

func findEdge(g *pathid.Graph, from, to int) *pathid.Edge {
	for _, e := range g.Children(from) {
		if e.To == to {
			return &e
		}
	}
	return nil
}

// PathRelSeq returns the sequence of relations joined by SQL(p) for a
// cross-product path, top-down — the paper's RelSeq(p). The owning relation
// of a trailing column-only leaf is included when the path contains no
// tuple node of its own (a bare scan).
func PathRelSeq(g *pathid.Graph, nodes []int) []string {
	var seq []string
	for _, id := range nodes {
		if sn := g.SchemaNode(id); sn.HasRelation() {
			seq = append(seq, sn.Relation)
		}
	}
	if len(seq) == 0 && len(nodes) > 0 {
		last := nodes[len(nodes)-1]
		if rel, _, err := g.Schema.Annot(g.Node(last).Schema); err == nil {
			seq = append(seq, rel)
		}
	}
	return seq
}
