package translate

import (
	"xmlsql/internal/sqlast"
	"xmlsql/internal/stats"
)

// ReorderJoins applies greedy smallest-intermediate-first join reordering
// to every eligible SELECT of q, using fan-out statistics to estimate the
// intermediate sizes (stats.Bound.GreedyOrder). A reorder is adopted only
// when the candidate order's estimated cost beats the translator's original
// order by the stats.ReorderMargin — the translators already emit joins in
// root-to-leaf order, which index probes favor, so near-ties keep the
// original. Recursive CTE bodies are never reordered (their delta binding
// makes cardinalities round-dependent). The input query is not mutated;
// when anything changes, a new Query sharing unchanged nodes is returned.
func ReorderJoins(q *sqlast.Query, est *stats.Estimator) (*sqlast.Query, bool) {
	b, err := est.Bind(q)
	if err != nil {
		return q, false
	}
	changed := false
	reorderSel := func(s *sqlast.Select) *sqlast.Select {
		order, ok := b.GreedyOrder(s)
		if !ok || isIdentity(order) {
			return s
		}
		orig := b.SelectEstimate(s)
		cand := b.OrderEstimate(s, order)
		if !(cand.Cost < stats.ReorderMargin*orig.Cost) {
			return s
		}
		ns := *s
		ns.From = make([]sqlast.FromItem, len(order))
		for i, o := range order {
			ns.From[i] = s.From[o]
		}
		changed = true
		return &ns
	}
	out := &sqlast.Query{With: make([]sqlast.CTE, 0, len(q.With)), Selects: make([]*sqlast.Select, 0, len(q.Selects))}
	for _, cte := range q.With {
		if cte.Recursive || len(cte.Body.With) > 0 {
			out.With = append(out.With, cte)
			continue
		}
		body := &sqlast.Query{Selects: make([]*sqlast.Select, 0, len(cte.Body.Selects))}
		for _, s := range cte.Body.Selects {
			body.Selects = append(body.Selects, reorderSel(s))
		}
		out.With = append(out.With, sqlast.CTE{Name: cte.Name, Body: body})
	}
	for _, s := range q.Selects {
		out.Selects = append(out.Selects, reorderSel(s))
	}
	if !changed {
		return q, false
	}
	return out, true
}

func isIdentity(order []int) bool {
	for i, o := range order {
		if i != o {
			return false
		}
	}
	return true
}
