package translate_test

import (
	"testing"

	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// checkNaive shreds the document, translates the query naively, executes it,
// and compares the multiset against the direct XML evaluation.
func checkNaive(t *testing.T, s *schema.Schema, doc *xmltree.Document, query string) *engine.Result {
	t.Helper()
	store := relational.NewStore()
	results, err := shred.ShredAll(s, store, shred.Options{}, doc)
	if err != nil {
		t.Fatalf("shred: %v", err)
	}
	q := pathexpr.MustParse(query)
	g, err := pathid.Build(s, q)
	if err != nil {
		t.Fatalf("pathid: %v", err)
	}
	sqlq, err := translate.Naive(g)
	if err != nil {
		t.Fatalf("naive translate: %v", err)
	}
	got, err := engine.Execute(store, sqlq)
	if err != nil {
		t.Fatalf("execute:\n%s\nerror: %v", sqlq.SQL(), err)
	}
	wantVals, err := shred.EvalReferenceAll(results, q)
	if err != nil {
		t.Fatalf("reference eval: %v", err)
	}
	want := &engine.Result{}
	for _, v := range wantVals {
		want.Rows = append(want.Rows, relational.Row{v})
	}
	if !got.MultisetEqual(want) {
		t.Errorf("query %s: naive SQL result differs from reference:\n%s\nSQL:\n%s",
			query, got.MultisetDiff(want), sqlq.SQL())
	}
	return got
}

func TestNaiveXMarkQ1(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	res := checkNaive(t, s, doc, workloads.QueryQ1)
	if res.Len() != 6*20*2 {
		t.Errorf("Q1 returned %d rows, want %d", res.Len(), 6*20*2)
	}
}

func TestNaiveXMarkQ1Shape(t *testing.T) {
	s := workloads.XMark()
	g, err := pathid.Build(s, pathexpr.MustParse(workloads.QueryQ1))
	if err != nil {
		t.Fatal(err)
	}
	q, err := translate.Naive(g)
	if err != nil {
		t.Fatal(err)
	}
	sh := q.Shape()
	// SQ1^1 of §2: six branches (one per continent), each joining
	// Site ⋈ Item ⋈ InCat (2 joins).
	if sh.Branches != 6 || sh.Joins != 12 || sh.CTEs != 0 {
		t.Errorf("Q1 naive shape = %v, want 6 branches, 12 joins", sh)
	}
}

func TestNaiveXMarkQ2(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	res := checkNaive(t, s, doc, workloads.QueryQ2)
	if res.Len() != 20*2 {
		t.Errorf("Q2 returned %d rows, want %d", res.Len(), 20*2)
	}
}

func TestNaiveXMarkVariousQueries(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	for _, q := range []string{
		"//Category",
		"//Item",
		"//Item/name",
		"/Site/Regions/Asia/Item",
		"/Site//InCategory/Category",
		"//Regions//name",
		"/Site",
	} {
		t.Run(q, func(t *testing.T) { checkNaive(t, s, doc, q) })
	}
}

func TestNaiveNoMatch(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	res := checkNaive(t, s, doc, "/Site/Nonexistent")
	if res.Len() != 0 {
		t.Errorf("expected empty result, got %d rows", res.Len())
	}
}

func TestNaiveS1(t *testing.T) {
	s := workloads.S1()
	doc := workloads.GenerateS1(10, 3)
	for _, q := range []string{"//x", "//y", "/a/b/x", "/a/c/x", "//b//x"} {
		t.Run(q, func(t *testing.T) { checkNaive(t, s, doc, q) })
	}
}

func TestNaiveS2DAG(t *testing.T) {
	s := workloads.S2()
	doc := workloads.GenerateS2(6, 9)
	for _, q := range []string{"//s/t1", "//t2", "/root/m1/s/t1", "//s", "//m2//t2"} {
		t.Run(q, func(t *testing.T) { checkNaive(t, s, doc, q) })
	}
}

func TestNaiveS3Recursive(t *testing.T) {
	s := workloads.S3()
	doc := workloads.GenerateS3(workloads.DefaultS3Config())
	for _, q := range []string{
		workloads.QueryQ4,
		workloads.QueryQ5,
		workloads.QueryQ6,
		workloads.QueryQ7,
		"//E10/elemid",
		"//E9//elemid",
		"/E0/E2/E8/E9/E10/elemid",
		"//E7//E10/elemid",
	} {
		t.Run(q, func(t *testing.T) { checkNaive(t, s, doc, q) })
	}
}

func TestNaiveS3UsesRecursiveSQL(t *testing.T) {
	s := workloads.S3()
	g, err := pathid.Build(s, pathexpr.MustParse(workloads.QueryQ6))
	if err != nil {
		t.Fatal(err)
	}
	q, err := translate.Naive(g)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Shape().Recursive {
		t.Errorf("Q6 over the recursive schema should produce recursive SQL, got shape %v:\n%s", q.Shape(), q.SQL())
	}
}

func TestNaiveEdgeMapping(t *testing.T) {
	base := workloads.XMark()
	es, err := shred.EdgeSchemaFor(base)
	if err != nil {
		t.Fatal(err)
	}
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	for _, q := range []string{
		workloads.QueryQ8,
		"//Category",
		"/Site/Regions/Africa/Item/name",
	} {
		t.Run(q, func(t *testing.T) { checkNaive(t, es, doc, q) })
	}
}

func TestNaiveADEX(t *testing.T) {
	s := workloads.ADEX()
	doc := workloads.GenerateADEX(workloads.DefaultADEXConfig())
	for _, q := range []string{
		workloads.QueryAdexAllPhones,
		workloads.QueryAdexAllTitles,
		workloads.QueryAdexVehicleEmails,
		workloads.QueryAdexPrices,
	} {
		t.Run(q, func(t *testing.T) { checkNaive(t, s, doc, q) })
	}
}
