package translate

import (
	"fmt"
	"sort"

	"xmlsql/internal/pathid"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// Subgraph designates a region of the cross-product schema to translate into
// SQL: the baseline translator uses the whole graph rooted at the start
// node; the pruning stage of internal/core uses pruned suffix regions with
// lead conditions from the edge-annotation optimization. Query generation
// follows [9]: shared computation and recursive components become WITH
// [RECURSIVE] CTEs; linear chains are inlined into plain join blocks.
type Subgraph struct {
	G *pathid.Graph
	// Nodes is the set of included cross-product node ids.
	Nodes map[int]bool
	// Entries are the top nodes of the region: tuples enter the computation
	// here by a relation scan filtered by the lead conditions (nil for a
	// full scan). For root-anchored translation the entry is the root node.
	Entries map[int][]schema.EdgeCond
	// Anchored pins entry tuples to the document root (parentid IS NULL).
	Anchored bool
	// Results are the accepting nodes to return, each projected through its
	// annotation.
	Results []int
	// NamePrefix makes CTE names unique when several subgraph queries are
	// unioned.
	NamePrefix string
}

// nodeKind classifies how a tuple node's matching rows are computed.
type nodeKind uint8

const (
	kindInline nodeKind = iota // single derivation, single consumer: inline joins
	kindCTE                    // shared: materialize a plain CTE holding R.*
	kindSCC                    // member of a recursive component CTE (node, id)
)

type hyperedge struct {
	from, to int // cross-product tuple node ids
	conds    []schema.EdgeCond
}

type sgGen struct {
	sg     *Subgraph
	tuples []int // annotated node ids in the region, sorted
	isTup  map[int]bool
	hyper  []hyperedge
	inTo   map[int][]int // tuple node -> indexes into hyper
	outOf  map[int][]int

	kind       map[int]nodeKind
	sccOf      map[int]int // tuple node -> scc ordinal (only for kindSCC)
	sccMembers map[int][]int
	cteName    map[int]string // tuple node or scc ordinal anchor -> cte name
	sccName    map[int]string

	with      []sqlast.CTE
	usedNames map[string]bool
}

// Query translates the subgraph.
func (sg *Subgraph) Query() (*sqlast.Query, error) {
	gen := &sgGen{
		sg:         sg,
		isTup:      map[int]bool{},
		inTo:       map[int][]int{},
		outOf:      map[int][]int{},
		kind:       map[int]nodeKind{},
		sccOf:      map[int]int{},
		sccMembers: map[int][]int{},
		cteName:    map[int]string{},
		sccName:    map[int]string{},
		usedNames:  map[string]bool{},
	}
	if err := gen.analyze(); err != nil {
		return nil, err
	}
	return gen.emit()
}

func (g *sgGen) analyze() error {
	sg := g.sg
	for id := range sg.Nodes {
		if sg.G.SchemaNode(id).HasRelation() {
			g.tuples = append(g.tuples, id)
			g.isTup[id] = true
		}
	}
	sort.Ints(g.tuples)

	// Hyperedges: tuple-to-tuple reachability through unannotated nodes.
	for _, a := range g.tuples {
		var walk func(id int, conds []schema.EdgeCond, seen map[int]bool) error
		walk = func(id int, conds []schema.EdgeCond, seen map[int]bool) error {
			for _, e := range sg.G.Children(id) {
				if !sg.Nodes[e.To] {
					continue
				}
				cconds := conds
				if e.Cond != nil {
					cconds = append(append([]schema.EdgeCond(nil), conds...), *e.Cond)
				}
				to := sg.G.SchemaNode(e.To)
				switch {
				case to.HasRelation():
					if extra := NodeConds(sg.G, e.To); len(extra) > 0 {
						cconds = append(append([]schema.EdgeCond(nil), cconds...), extra...)
					}
					idx := len(g.hyper)
					g.hyper = append(g.hyper, hyperedge{from: a, to: e.To, conds: cconds})
					g.inTo[e.To] = append(g.inTo[e.To], idx)
					g.outOf[a] = append(g.outOf[a], idx)
				case to.Column != "":
					// value leaf; handled via results
				default:
					if seen[e.To] {
						return fmt.Errorf("translate: unannotated cycle at cross-product node %d", e.To)
					}
					seen[e.To] = true
					if err := walk(e.To, cconds, seen); err != nil {
						return err
					}
					delete(seen, e.To)
				}
			}
			return nil
		}
		if err := walk(a, nil, map[int]bool{}); err != nil {
			return err
		}
	}

	// SCC condensation over tuple nodes (iterative Tarjan).
	ord := map[int]int{}
	for i, t := range g.tuples {
		ord[t] = i
	}
	n := len(g.tuples)
	adj := make([][]int, n)
	for _, he := range g.hyper {
		adj[ord[he.from]] = append(adj[ord[he.from]], ord[he.to])
	}
	comp, recursive := tarjan(n, adj)
	for i, t := range g.tuples {
		if recursive[comp[i]] {
			g.kind[t] = kindSCC
			g.sccOf[t] = comp[i]
			g.sccMembers[comp[i]] = append(g.sccMembers[comp[i]], t)
		}
	}

	// Materialization decision for non-SCC nodes: a node with several
	// derivations (incoming hyperedges + entry) or several consumers
	// (outgoing hyperedges + result branches) gets a CTE; otherwise its
	// joins are inlined into its single consumer.
	consumers := map[int]int{}
	for _, he := range g.hyper {
		consumers[he.from]++
	}
	for _, r := range g.sg.Results {
		owners, err := g.resultOwners(r)
		if err != nil {
			return err
		}
		for _, o := range owners {
			if o.owner >= 0 {
				consumers[o.owner]++
			}
		}
	}
	for _, t := range g.tuples {
		if g.kind[t] == kindSCC {
			continue
		}
		derivations := len(g.inTo[t])
		if _, isEntry := g.sg.Entries[t]; isEntry {
			derivations++
		}
		if derivations > 1 || consumers[t] > 1 || g.feedsFromSCC(t) {
			g.kind[t] = kindCTE
		} else {
			g.kind[t] = kindInline
		}
	}
	return nil
}

// feedsFromSCC reports whether any derivation of t comes out of a recursive
// component; such nodes read the component CTE and are materialized for
// clarity (matching [9]'s output shape).
func (g *sgGen) feedsFromSCC(t int) bool {
	for _, idx := range g.inTo[t] {
		if g.kind[g.hyper[idx].from] == kindSCC {
			return true
		}
	}
	return false
}

// resultOwner describes how one result branch is produced: either from a
// tuple node (owner >= 0, projecting col) or by a bare scan of a relation
// (owner == -1) for column-only entry leaves.
type resultOwner struct {
	owner int
	rel   string
	col   string
	conds []schema.EdgeCond // scan conditions (owner == -1 only)
}

// resultOwners resolves a result node to the tuple node(s) owning its value.
func (g *sgGen) resultOwners(r int) ([]resultOwner, error) {
	sn := g.sg.G.SchemaNode(r)
	rel, col, err := g.sg.G.Schema.Annot(sn.ID)
	if err != nil {
		return nil, err
	}
	if sn.HasRelation() {
		return []resultOwner{{owner: r, rel: rel, col: col}}, nil
	}
	// Column-only leaf: owners are the annotated parents within the region,
	// reached backwards through unannotated nodes.
	var out []resultOwner
	var walkUp func(id int, seen map[int]bool) error
	walkUp = func(id int, seen map[int]bool) error {
		for _, e := range g.sg.G.Parents(id) {
			if !g.sg.Nodes[e.From] {
				continue
			}
			if e.Cond != nil {
				return fmt.Errorf("translate: edge condition on path to value leaf %s", sn.Name)
			}
			p := g.sg.G.SchemaNode(e.From)
			switch {
			case p.HasRelation():
				out = append(out, resultOwner{owner: e.From, rel: rel, col: col})
			default:
				if seen[e.From] {
					continue
				}
				seen[e.From] = true
				if err := walkUp(e.From, seen); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walkUp(r, map[int]bool{}); err != nil {
		return nil, err
	}
	if conds, isEntry := g.sg.Entries[r]; isEntry {
		out = append(out, resultOwner{owner: -1, rel: rel, col: col, conds: conds})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("translate: value leaf %s has no owner in subgraph and is not an entry", sn.Name)
	}
	return out, nil
}

func tarjan(n int, adj [][]int) (comp []int, recursive map[int]bool) {
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	recursive = map[int]bool{}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	counter := 0
	nComp := 0

	type frame struct {
		v, child int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		call := []frame{{v: start}}
		index[start], low[start] = counter, counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.child < len(adj[f.v]) {
				w := adj[f.v][f.child]
				f.child++
				if index[w] == -1 {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					members = append(members, w)
					if w == f.v {
						break
					}
				}
				if len(members) > 1 {
					recursive[nComp] = true
				} else {
					v := members[0]
					for _, w := range adj[v] {
						if w == v {
							recursive[nComp] = true
						}
					}
				}
				nComp++
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return comp, recursive
}

func (g *sgGen) freshName(base string) string {
	name := g.sg.NamePrefix + "temp_" + base
	if !g.usedNames[name] {
		g.usedNames[name] = true
		return name
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s_%d", name, i)
		if !g.usedNames[cand] {
			g.usedNames[cand] = true
			return cand
		}
	}
}

// instantiate adds the FROM items and conditions that compute tuple node t's
// matching rows into sel, returning the alias that holds t's relation row.
func (g *sgGen) instantiate(t int, sel *sqlast.Select, al *Aliases) (string, error) {
	sn := g.sg.G.SchemaNode(t)
	switch g.kind[t] {
	case kindCTE:
		alias := al.For(g.cteName[t])
		sel.From = append(sel.From, sqlast.From(g.cteName[t], alias))
		return alias, nil
	case kindSCC:
		scc := g.sccOf[t]
		ts := al.For(g.sccName[scc])
		sel.From = append(sel.From, sqlast.From(g.sccName[scc], ts))
		sel.Where = sqlast.Conj(sel.Where,
			sqlast.Eq(sqlast.ColRef{Table: ts, Column: "node"}, sqlast.IntLit(int64(t))))
		// Rejoin the base relation to expose its full row.
		alias := al.For(sn.Relation)
		sel.From = append(sel.From, sqlast.From(sn.Relation, alias))
		sel.Where = sqlast.Conj(sel.Where,
			sqlast.Eq(sqlast.ColRef{Table: alias, Column: schema.IDColumn}, sqlast.ColRef{Table: ts, Column: schema.IDColumn}))
		return alias, nil
	default: // kindInline
		alias := al.For(sn.Relation)
		sel.From = append(sel.From, sqlast.From(sn.Relation, alias))
		if conds, isEntry := g.sg.Entries[t]; isEntry {
			if g.sg.Anchored {
				sel.Where = sqlast.Conj(sel.Where, sqlast.IsNull{Left: sqlast.ColRef{Table: alias, Column: schema.ParentIDColumn}})
			}
			for _, c := range append(append([]schema.EdgeCond(nil), NodeConds(g.sg.G, t)...), conds...) {
				sel.Where = sqlast.Conj(sel.Where, CondExpr(alias, c))
			}
			return alias, nil
		}
		if len(g.inTo[t]) != 1 {
			return "", fmt.Errorf("translate: internal: inline node %d has %d derivations", t, len(g.inTo[t]))
		}
		he := g.hyper[g.inTo[t][0]]
		pAlias, err := g.instantiate(he.from, sel, al)
		if err != nil {
			return "", err
		}
		sel.Where = sqlast.Conj(sel.Where,
			sqlast.Eq(sqlast.ColRef{Table: alias, Column: schema.ParentIDColumn}, sqlast.ColRef{Table: pAlias, Column: schema.IDColumn}))
		for _, c := range he.conds {
			sel.Where = sqlast.Conj(sel.Where, CondExpr(alias, c))
		}
		return alias, nil
	}
}

// derivationSelects builds the UNION ALL branches computing tuple node t's
// rows, projected through proj (which receives the relation alias).
func (g *sgGen) derivationSelects(t int, proj func(alias string) []sqlast.SelectItem) ([]*sqlast.Select, error) {
	sn := g.sg.G.SchemaNode(t)
	var out []*sqlast.Select
	if conds, isEntry := g.sg.Entries[t]; isEntry {
		sel := &sqlast.Select{}
		al := NewAliases()
		alias := al.For(sn.Relation)
		sel.From = append(sel.From, sqlast.From(sn.Relation, alias))
		if g.sg.Anchored {
			sel.Where = sqlast.Conj(sel.Where, sqlast.IsNull{Left: sqlast.ColRef{Table: alias, Column: schema.ParentIDColumn}})
		}
		for _, c := range append(append([]schema.EdgeCond(nil), NodeConds(g.sg.G, t)...), conds...) {
			sel.Where = sqlast.Conj(sel.Where, CondExpr(alias, c))
		}
		sel.Cols = proj(alias)
		out = append(out, sel)
	}
	for _, idx := range g.inTo[t] {
		he := g.hyper[idx]
		sel := &sqlast.Select{}
		al := NewAliases()
		pAlias, err := g.instantiate(he.from, sel, al)
		if err != nil {
			return nil, err
		}
		alias := al.For(sn.Relation)
		sel.From = append(sel.From, sqlast.From(sn.Relation, alias))
		sel.Where = sqlast.Conj(sel.Where,
			sqlast.Eq(sqlast.ColRef{Table: alias, Column: schema.ParentIDColumn}, sqlast.ColRef{Table: pAlias, Column: schema.IDColumn}))
		for _, c := range he.conds {
			sel.Where = sqlast.Conj(sel.Where, CondExpr(alias, c))
		}
		sel.Cols = proj(alias)
		out = append(out, sel)
	}
	return out, nil
}

func (g *sgGen) emit() (*sqlast.Query, error) {
	// Topological order of the condensation, derived from tuple id order
	// with Kahn's algorithm over scc edges.
	order, err := g.topoSCCs()
	if err != nil {
		return nil, err
	}

	for _, unit := range order {
		if unit.scc >= 0 {
			if err := g.emitSCC(unit.scc); err != nil {
				return nil, err
			}
			continue
		}
		t := unit.node
		if g.kind[t] != kindCTE {
			continue
		}
		name := g.freshName(g.sg.G.SchemaNode(t).Name)
		g.cteName[t] = name
		star := func(alias string) []sqlast.SelectItem { return []sqlast.SelectItem{sqlast.Star(alias)} }
		sels, err := g.derivationSelects(t, star)
		if err != nil {
			return nil, err
		}
		g.with = append(g.with, sqlast.CTE{Name: name, Body: &sqlast.Query{Selects: sels}})
	}

	// Result branches.
	q := &sqlast.Query{With: g.with}
	for _, r := range g.sg.Results {
		owners, err := g.resultOwners(r)
		if err != nil {
			return nil, err
		}
		for _, ro := range owners {
			sel := &sqlast.Select{}
			al := NewAliases()
			if ro.owner < 0 {
				alias := al.For(ro.rel)
				sel.From = append(sel.From, sqlast.From(ro.rel, alias))
				if g.sg.Anchored {
					sel.Where = sqlast.Conj(sel.Where, sqlast.IsNull{Left: sqlast.ColRef{Table: alias, Column: schema.ParentIDColumn}})
				}
				for _, c := range ro.conds {
					sel.Where = sqlast.Conj(sel.Where, CondExpr(alias, c))
				}
				sel.Cols = []sqlast.SelectItem{sqlast.Col(alias, ro.col)}
				q.Selects = append(q.Selects, sel)
				continue
			}
			// Elemid results from a recursive component need no rejoin.
			if g.kind[ro.owner] == kindSCC && ro.col == schema.IDColumn {
				scc := g.sccOf[ro.owner]
				ts := al.For(g.sccName[scc])
				sel.From = append(sel.From, sqlast.From(g.sccName[scc], ts))
				sel.Where = sqlast.Conj(sel.Where,
					sqlast.Eq(sqlast.ColRef{Table: ts, Column: "node"}, sqlast.IntLit(int64(ro.owner))))
				sel.Cols = []sqlast.SelectItem{sqlast.Col(ts, schema.IDColumn)}
				q.Selects = append(q.Selects, sel)
				continue
			}
			alias, err := g.instantiate(ro.owner, sel, al)
			if err != nil {
				return nil, err
			}
			sel.Cols = []sqlast.SelectItem{sqlast.Col(alias, ro.col)}
			q.Selects = append(q.Selects, sel)
		}
	}
	return q, nil
}

// emitSCC materializes a recursive component as a recursive CTE with
// columns (node, id): node discriminates which cross-product node each
// tuple matched, exactly the extra state §5.1 discusses.
func (g *sgGen) emitSCC(scc int) error {
	members := g.sccMembers[scc]
	sort.Ints(members)
	var baseName string
	for i, m := range members {
		if i > 0 {
			baseName += "_"
		}
		baseName += g.sg.G.SchemaNode(m).Name
	}
	name := g.freshName(baseName)
	g.sccName[scc] = name

	inSCC := map[int]bool{}
	for _, m := range members {
		inSCC[m] = true
	}

	var sels []*sqlast.Select
	tagged := func(t int) func(alias string) []sqlast.SelectItem {
		return func(alias string) []sqlast.SelectItem {
			return []sqlast.SelectItem{
				{Expr: sqlast.IntLit(int64(t)), As: "node"},
				{Expr: sqlast.ColRef{Table: alias, Column: schema.IDColumn}, As: schema.IDColumn},
			}
		}
	}

	for _, m := range members {
		sn := g.sg.G.SchemaNode(m)
		// Base branches: entries inside the component and hyperedges from
		// outside it.
		if conds, isEntry := g.sg.Entries[m]; isEntry {
			sel := &sqlast.Select{}
			al := NewAliases()
			alias := al.For(sn.Relation)
			sel.From = append(sel.From, sqlast.From(sn.Relation, alias))
			if g.sg.Anchored {
				sel.Where = sqlast.Conj(sel.Where, sqlast.IsNull{Left: sqlast.ColRef{Table: alias, Column: schema.ParentIDColumn}})
			}
			for _, c := range append(append([]schema.EdgeCond(nil), NodeConds(g.sg.G, m)...), conds...) {
				sel.Where = sqlast.Conj(sel.Where, CondExpr(alias, c))
			}
			sel.Cols = tagged(m)(alias)
			sels = append(sels, sel)
		}
		for _, idx := range g.inTo[m] {
			he := g.hyper[idx]
			sel := &sqlast.Select{}
			al := NewAliases()
			var pID sqlast.ColRef
			if inSCC[he.from] {
				// Recursive branch: read the component CTE itself.
				ts := al.For(name)
				sel.From = append(sel.From, sqlast.From(name, ts))
				sel.Where = sqlast.Conj(sel.Where,
					sqlast.Eq(sqlast.ColRef{Table: ts, Column: "node"}, sqlast.IntLit(int64(he.from))))
				pID = sqlast.ColRef{Table: ts, Column: schema.IDColumn}
			} else {
				pAlias, err := g.instantiate(he.from, sel, al)
				if err != nil {
					return err
				}
				pID = sqlast.ColRef{Table: pAlias, Column: schema.IDColumn}
			}
			alias := al.For(sn.Relation)
			sel.From = append(sel.From, sqlast.From(sn.Relation, alias))
			sel.Where = sqlast.Conj(sel.Where,
				sqlast.Eq(sqlast.ColRef{Table: alias, Column: schema.ParentIDColumn}, pID))
			for _, c := range he.conds {
				sel.Where = sqlast.Conj(sel.Where, CondExpr(alias, c))
			}
			sel.Cols = tagged(m)(alias)
			sels = append(sels, sel)
		}
	}
	g.with = append(g.with, sqlast.CTE{Name: name, Recursive: true, Body: &sqlast.Query{Selects: sels}})
	return nil
}

type emitUnit struct {
	node int // tuple node id, or -1
	scc  int // scc ordinal, or -1
}

// topoSCCs orders emission units (plain tuple nodes and recursive
// components) so every derivation's source is emitted first.
func (g *sgGen) topoSCCs() ([]emitUnit, error) {
	// Unit key: "n<id>" or "s<scc>".
	unitOf := func(t int) string {
		if g.kind[t] == kindSCC {
			return "s" + itoaInt(g.sccOf[t])
		}
		return "n" + itoaInt(t)
	}
	indeg := map[string]int{}
	adj := map[string][]string{}
	units := map[string]emitUnit{}
	for _, t := range g.tuples {
		k := unitOf(t)
		if _, ok := units[k]; !ok {
			units[k] = unitFor(g, t)
			indeg[k] += 0
		}
	}
	for _, he := range g.hyper {
		a, b := unitOf(he.from), unitOf(he.to)
		if a == b {
			continue
		}
		adj[a] = append(adj[a], b)
		indeg[b]++
	}
	var queue []string
	for k, d := range indeg {
		if d == 0 {
			queue = append(queue, k)
		}
	}
	sort.Strings(queue)
	var order []emitUnit
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		order = append(order, units[k])
		for _, next := range adj[k] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
		sort.Strings(queue)
	}
	if len(order) != len(units) {
		return nil, fmt.Errorf("translate: internal: cyclic condensation")
	}
	return order, nil
}

func unitFor(g *sgGen, t int) emitUnit {
	if g.kind[t] == kindSCC {
		return emitUnit{node: -1, scc: g.sccOf[t]}
	}
	return emitUnit{node: t, scc: -1}
}

func itoaInt(n int) string {
	return fmt.Sprintf("%d", n)
}
