package translate_test

import (
	"strings"
	"testing"

	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
)

func TestAliases(t *testing.T) {
	al := translate.NewAliases()
	cases := []struct{ rel, want string }{
		{"Site", "S"},
		{"Item", "I"},
		{"InCat", "IC"},
		{"Site", "S2"}, // clash
		{"R3", "R3"},
		{"lower", "L"},
	}
	for _, c := range cases {
		if got := al.For(c.rel); got != c.want {
			t.Errorf("For(%s) = %s, want %s", c.rel, got, c.want)
		}
	}
}

func TestNeedsAnchor(t *testing.T) {
	if translate.NeedsAnchor(workloads.XMark()) {
		t.Error("XMark does not need anchoring")
	}
	edge := schema.NewBuilder("e").
		Node("r", "a", schema.Rel("Edge")).
		Node("c", "b", schema.Rel("Edge")).
		Root("r").
		Edge("r", "c").
		MustBuild()
	if !translate.NeedsAnchor(edge) {
		t.Error("Edge-style mapping needs anchoring")
	}
	noRel := schema.NewBuilder("n").
		Node("r", "a").
		Node("v", "v", schema.Col("x")).
		Root("r")
	_ = noRel // root without relation cannot be built with a col child; skip
}

func buildCP(t *testing.T, s *schema.Schema, q string) *pathid.Graph {
	t.Helper()
	g, err := pathid.Build(s, pathexpr.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildPathSelect(t *testing.T) {
	s := workloads.XMark()
	g := buildCP(t, s, workloads.QueryQ2)
	paths, _ := g.EnumeratePaths(10, 1)
	if len(paths) != 1 {
		t.Fatal("want one path")
	}
	sel, err := translate.BuildPathSelect(g, translate.PathSpec{Nodes: paths[0]})
	if err != nil {
		t.Fatal(err)
	}
	sql := sel.SQL()
	for _, want := range []string{"Site S", "Item I", "InCat IC", "parentcode = 1", "select IC.category"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestBuildPathSelectSuffix(t *testing.T) {
	s := workloads.XMark()
	g := buildCP(t, s, workloads.QueryQ2)
	paths, _ := g.EnumeratePaths(10, 1)
	// Suffix <Item, InCategory, Category> with the parentcode lead condition
	// — the §4.1 pruned Q2.
	suffix := paths[0][3:]
	sel, err := translate.BuildPathSelect(g, translate.PathSpec{
		Nodes: suffix,
		LeadConds: []schema.EdgeCond{{
			Column: "parentcode",
			Value:  relational.Int(1),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sql := sel.SQL()
	if strings.Contains(sql, "Site") {
		t.Errorf("suffix SQL must not join Site:\n%s", sql)
	}
	if !strings.Contains(sql, "I.parentcode = 1") {
		t.Errorf("lead condition missing:\n%s", sql)
	}
}

func TestBuildPathSelectBareLeaf(t *testing.T) {
	s := workloads.XMark()
	g := buildCP(t, s, workloads.QueryQ1)
	paths, _ := g.EnumeratePaths(10, 1)
	leaf := paths[0][len(paths[0])-1:]
	sel, err := translate.BuildPathSelect(g, translate.PathSpec{Nodes: leaf})
	if err != nil {
		t.Fatal(err)
	}
	sql := sel.SQL()
	if !strings.Contains(sql, "from   InCat") || strings.Contains(sql, "where") {
		t.Errorf("bare leaf must be a plain scan:\n%s", sql)
	}
}

func TestBuildCombinedSelect(t *testing.T) {
	s := workloads.XMark()
	g := buildCP(t, s, workloads.QueryQ1)
	paths, _ := g.EnumeratePaths(10, 1)
	if len(paths) != 6 {
		t.Fatal("want six paths")
	}
	// Combine the suffixes <continent, Item, InCategory, Category>: common
	// joins, disjoined parentcodes.
	specs := make([]translate.PathSpec, len(paths))
	for i, p := range paths {
		specs[i] = translate.PathSpec{Nodes: p[2:]} // from the continent down
	}
	sel, err := translate.BuildCombinedSelect(g, specs)
	if err != nil {
		t.Fatal(err)
	}
	sql := sel.SQL()
	if !strings.Contains(sql, "OR") {
		t.Errorf("expected disjoined conditions:\n%s", sql)
	}
	for pc := 1; pc <= 6; pc++ {
		if !strings.Contains(sql, "parentcode = "+string(rune('0'+pc))) {
			t.Errorf("missing parentcode %d:\n%s", pc, sql)
		}
	}
}

func TestBuildCombinedSelectDropsRedundantDisjunction(t *testing.T) {
	s := workloads.XMark()
	g := buildCP(t, s, workloads.QueryQ1)
	paths, _ := g.EnumeratePaths(10, 1)
	// Combining the bare Category leaves: no conditions at all -> plain scan.
	specs := make([]translate.PathSpec, len(paths))
	for i, p := range paths {
		specs[i] = translate.PathSpec{Nodes: p[len(p)-1:]}
	}
	sel, err := translate.BuildCombinedSelect(g, specs)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Where != nil {
		t.Errorf("expected no WHERE clause:\n%s", sel.SQL())
	}
}

func TestBuildCombinedSelectRejectsMismatch(t *testing.T) {
	s := workloads.XMark()
	g := buildCP(t, s, workloads.QueryQ1)
	paths, _ := g.EnumeratePaths(10, 1)
	specs := []translate.PathSpec{
		{Nodes: paths[0][2:]}, // RelSeq [Item, InCat] (continent is unannotated)
		{Nodes: paths[1][4:]}, // RelSeq [InCat]
	}
	if _, err := translate.BuildCombinedSelect(g, specs); err == nil {
		t.Error("mismatched RelSeqs accepted")
	}
}

func TestCPIsTree(t *testing.T) {
	if !translate.CPIsTree(buildCP(t, workloads.XMark(), workloads.QueryQ1)) {
		t.Error("XMark Q1 cross-product should be a tree")
	}
	if translate.CPIsTree(buildCP(t, workloads.S2(), "//s/t1")) {
		t.Error("S2 //s/t1 cross-product should not be a tree (shared node)")
	}
	if translate.CPIsTree(buildCP(t, workloads.S3(), workloads.QueryQ6)) {
		t.Error("S3 Q6 cross-product should not be a tree (recursive)")
	}
}

func TestPathRelSeq(t *testing.T) {
	s := workloads.XMark()
	g := buildCP(t, s, workloads.QueryQ2)
	paths, _ := g.EnumeratePaths(10, 1)
	seq := translate.PathRelSeq(g, paths[0])
	want := []string{"Site", "Item", "InCat"}
	if len(seq) != 3 || seq[0] != want[0] || seq[1] != want[1] || seq[2] != want[2] {
		t.Errorf("RelSeq = %v, want %v", seq, want)
	}
	// Bare column-only leaf resolves to the owning relation.
	leafSeq := translate.PathRelSeq(g, paths[0][len(paths[0])-1:])
	if len(leafSeq) != 1 || leafSeq[0] != "InCat" {
		t.Errorf("leaf RelSeq = %v", leafSeq)
	}
}
