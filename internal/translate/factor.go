package translate

import (
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// FactorSharedPrefixes applies the shared-work rewrite (sqlast.FactorUnions)
// to a translated query, resolving star projections through the schema's
// derived relations. It returns the rewritten query and whether anything
// changed; on any schema derivation problem the input is returned unchanged —
// factoring is an optimization, never a correctness requirement.
func FactorSharedPrefixes(q *sqlast.Query, s *schema.Schema) (*sqlast.Query, bool) {
	if q == nil {
		return q, false
	}
	var columns sqlast.ColumnsFunc
	if s != nil {
		if defs, err := s.DeriveRelations(); err == nil {
			columns = func(table string) []string {
				d, ok := defs[table]
				if !ok {
					return nil
				}
				ts := d.TableSchema()
				cols := make([]string, len(ts.Columns))
				for i, c := range ts.Columns {
					cols[i] = c.Name
				}
				return cols
			}
		}
	}
	return sqlast.FactorUnions(q, columns)
}
