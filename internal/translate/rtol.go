package translate

import (
	"fmt"

	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// RtoL builds the paper's root-to-leaf query RtoL(l) (§3.2): the UNION ALL
// of SQL(p) over every root-to-l path p in the schema. For recursive schemas
// the path set is infinite; paths are enumerated with each node visited at
// most unroll times, and the second result reports whether the enumeration
// was complete.
//
// RtoL is the formal core of the "lossless from XML" constraint: property P2
// states that for every relational column R.C,
//
//	select R.C from R  ≡  ⋃ { RtoL(l) : l ∈ LeafNodes(R.C) }
//
// under multiset semantics. The shred package's tests check exactly that
// equivalence on shredded instances.
func RtoL(s *schema.Schema, leaf schema.NodeID, unroll int) (*sqlast.Query, bool, error) {
	if unroll <= 0 {
		unroll = 1
	}
	rel, col, err := s.Annot(leaf)
	if err != nil {
		return nil, false, err
	}

	// Enumerate root-to-leaf node paths.
	var paths [][]schema.NodeID
	complete := true
	visits := map[schema.NodeID]int{}
	var cur []schema.NodeID
	var rec func(id schema.NodeID)
	rec = func(id schema.NodeID) {
		if visits[id] >= unroll {
			complete = false
			return
		}
		visits[id]++
		cur = append(cur, id)
		if id == leaf {
			paths = append(paths, append([]schema.NodeID(nil), cur...))
		}
		for _, e := range s.Node(id).Children() {
			rec(e.To)
		}
		cur = cur[:len(cur)-1]
		visits[id]--
	}
	rec(s.Root())
	if len(paths) == 0 {
		return nil, false, fmt.Errorf("translate: leaf %s unreachable from root", s.Node(leaf).Name)
	}

	anchored := NeedsAnchor(s)
	q := &sqlast.Query{}
	for _, p := range paths {
		sel, err := schemaPathSelect(s, p, rel, col, anchored)
		if err != nil {
			return nil, false, err
		}
		q.Selects = append(q.Selects, sel)
	}
	return q, complete, nil
}

// schemaPathSelect builds SQL(p) for a root-to-node path of the schema graph
// itself (the §3.2 definition, independent of any query).
func schemaPathSelect(s *schema.Schema, path []schema.NodeID, rel, col string, anchored bool) (*sqlast.Select, error) {
	sel := &sqlast.Select{}
	al := NewAliases()
	var conj []sqlast.Expr
	var pending []schema.EdgeCond
	prevAlias := ""
	lastAlias := ""

	for i, id := range path {
		if i > 0 {
			if e := s.EdgeBetween(path[i-1], id); e != nil && e.Cond != nil {
				pending = append(pending, *e.Cond)
			}
		}
		n := s.Node(id)
		if !n.HasRelation() {
			continue
		}
		alias := al.For(n.Relation)
		sel.From = append(sel.From, sqlast.From(n.Relation, alias))
		if prevAlias == "" {
			if anchored {
				conj = append(conj, sqlast.IsNull{Left: sqlast.ColRef{Table: alias, Column: schema.ParentIDColumn}})
			}
		} else {
			conj = append(conj, sqlast.Eq(
				sqlast.ColRef{Table: alias, Column: schema.ParentIDColumn},
				sqlast.ColRef{Table: prevAlias, Column: schema.IDColumn}))
		}
		for _, c := range append(pending, n.Conds...) {
			conj = append(conj, CondExpr(alias, c))
		}
		pending = nil
		prevAlias = alias
		lastAlias = alias
	}
	if lastAlias == "" || s.Node(path[len(path)-1]).HasRelation() == false {
		// Column-only leaf: the value lives in the owner alias, which is the
		// last relation on the path.
		if lastAlias == "" {
			alias := al.For(rel)
			sel.From = append(sel.From, sqlast.From(rel, alias))
			lastAlias = alias
		}
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("translate: dangling edge conditions on path to %s", s.Node(path[len(path)-1]).Name)
	}
	sel.Cols = []sqlast.SelectItem{sqlast.Col(lastAlias, col)}
	sel.Where = sqlast.Conj(conj...)
	return sel, nil
}
