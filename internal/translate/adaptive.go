package translate

import (
	"fmt"
	"runtime"

	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/stats"
)

// Decision is the adaptive chooser's record of one query's plan-level
// selections, with the estimates that justified them; xml2sql -explain
// prints it and the plan cache keys on KnobKey().
type Decision struct {
	// UsePruned reports that the pruned (constraint-exploiting) translation
	// was chosen over the baseline. The pruned plan must clear
	// stats.PlanMargin: when pruning merely drops a near-free join (the
	// regressing headline cases, where both plans cost within a few
	// percent), the measured-safe baseline wins.
	UsePruned bool
	// Factored reports that the shared-prefix factored rewrite was adopted.
	Factored bool
	// Reordered reports that at least one branch's joins were reordered.
	Reordered bool

	// BaselineEst/PrunedEst are the candidates' estimates (PrunedEst is nil
	// when translation fell back to the baseline); ChosenEst estimates the
	// final Query after rewrites.
	BaselineEst *stats.QueryEstimate
	PrunedEst   *stats.QueryEstimate
	ChosenEst   *stats.QueryEstimate

	// Query is the chosen, possibly rewritten plan.
	Query *sqlast.Query
}

// KnobKey is the compact knob vector identifying this decision in plan
// cache keys: two cached plans for the same query text differ exactly when
// their decisions differ.
func (d *Decision) KnobKey() string {
	plan := "baseline"
	if d.UsePruned {
		plan = "pruned"
	}
	return fmt.Sprintf("plan=%s,factor=%t,reorder=%t", plan, d.Factored, d.Reordered)
}

// ExpectParallel reports the execution-time serial/parallel decision the
// engine's Auto mode will take for the chosen plan on this machine.
func (d *Decision) ExpectParallel() bool {
	return d.ChosenEst.ParallelWorthwhile(runtime.GOMAXPROCS(0))
}

// ExpectMemo reports the execution-time memo decision the engine's Auto
// mode will take for the chosen plan.
func (d *Decision) ExpectMemo() bool { return d.ChosenEst.MemoWorthwhile() }

// ChoosePlan runs the cost-based plan chooser over a query's candidate
// translations. naive is the baseline (always correct); pruned is the
// constraint-exploiting translation, or nil when translation fell back to
// the baseline. The chooser (1) keeps the pruned plan only when its
// estimated cost clears stats.PlanMargin against the baseline, (2) adopts
// the shared-prefix factored rewrite when it clears stats.FactorMargin,
// and (3) greedily reorders joins within branches when that clears
// stats.ReorderMargin. Execution-time knobs (serial/parallel, memo) are not
// decided here: the engine's Options.Auto resolves them from ChosenEst.
func ChoosePlan(naive, pruned *sqlast.Query, s *schema.Schema, est *stats.Estimator) *Decision {
	d := &Decision{BaselineEst: est.EstimateQuery(naive), Query: naive}
	d.ChosenEst = d.BaselineEst
	if pruned != nil {
		d.PrunedEst = est.EstimateQuery(pruned)
		if d.PrunedEst.Cost < stats.PlanMargin*d.BaselineEst.Cost {
			d.UsePruned = true
			d.Query = pruned
			d.ChosenEst = d.PrunedEst
		}
	}

	if factored, changed := FactorSharedPrefixes(d.Query, s); changed {
		fEst := est.EstimateQuery(factored)
		// Factoring competes with the engine's subplan memo, which exploits
		// the same shared prefixes without rewriting the plan: the factored
		// plan must beat the unfactored one as the memo would run it, i.e.
		// net of the reuse the memo is estimated to capture.
		target := d.ChosenEst.Cost
		if d.ChosenEst.MemoWorthwhile() {
			target -= d.ChosenEst.SharedReuseCost
		}
		if fEst.Cost < stats.FactorMargin*target {
			d.Factored = true
			d.Query = factored
			d.ChosenEst = fEst
		}
	}

	if reordered, changed := ReorderJoins(d.Query, est); changed {
		// ReorderJoins already enforced its own margin per branch.
		d.Reordered = true
		d.Query = reordered
		d.ChosenEst = est.EstimateQuery(reordered)
	}
	return d
}
