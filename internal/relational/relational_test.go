package relational

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Error("zero Value must be NULL")
	}
	if Int(5).Kind() != KindInt || Int(5).AsInt() != 5 {
		t.Error("Int round trip failed")
	}
	if String("x").Kind() != KindString || String("x").AsString() != "x" {
		t.Error("String round trip failed")
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	// SQL equality: NULL = anything (including NULL) is not TRUE.
	if Null.Equal(Null) {
		t.Error("NULL = NULL must not hold under SQL semantics")
	}
	if Null.Equal(Int(0)) || Int(0).Equal(Null) {
		t.Error("NULL = 0 must not hold")
	}
	if !Int(3).Equal(Int(3)) || Int(3).Equal(Int(4)) {
		t.Error("integer equality broken")
	}
	if Int(3).Equal(String("3")) {
		t.Error("cross-kind equality must not hold")
	}
}

func TestValueIdentical(t *testing.T) {
	if !Null.Identical(Null) {
		t.Error("NULL must be identical to NULL for multiset comparison")
	}
	if Null.Identical(Int(0)) {
		t.Error("NULL must not be identical to 0")
	}
}

func TestValueKeyInjective(t *testing.T) {
	// Distinct values must have distinct keys; identical values equal keys.
	f := func(a, b int64) bool {
		ka, kb := Int(a).Key(), Int(b).Key()
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		ka, kb := String(a).Key(), String(b).Key()
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	if Int(0).Key() == String("0").Key() || Null.Key() == String("").Key() {
		t.Error("keys must be distinct across kinds")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	f := func(a, b int64) bool {
		c1, c2 := Int(a).Compare(Int(b)), Int(b).Compare(Int(a))
		return c1 == -c2 && ((a == b) == (c1 == 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Null.Compare(Int(-999)) != -1 || Int(0).Compare(String("")) != -1 {
		t.Error("cross-kind ordering must be NULL < INT < VARCHAR")
	}
}

func testSchema() *TableSchema {
	return &TableSchema{
		Name: "T",
		Columns: []Column{
			{Name: "id", Kind: KindInt},
			{Name: "parentid", Kind: KindInt},
			{Name: "v", Kind: KindString},
		},
		PrimaryKey: "id",
	}
}

func TestTableInsertValidation(t *testing.T) {
	tbl := NewTable(testSchema())
	if err := tbl.Insert(Row{Int(1), Null, String("a")}); err != nil {
		t.Fatalf("valid insert rejected: %v", err)
	}
	if err := tbl.Insert(Row{Int(1), Null, String("b")}); err == nil {
		t.Error("duplicate primary key accepted")
	}
	if err := tbl.Insert(Row{Int(2), Null}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tbl.Insert(Row{String("x"), Null, String("b")}); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := tbl.Insert(Row{Null, Null, String("b")}); err == nil {
		t.Error("NULL primary key accepted")
	}
	if tbl.Len() != 1 {
		t.Errorf("table has %d rows, want 1", tbl.Len())
	}
}

func TestTableIndexLookup(t *testing.T) {
	tbl := NewTable(testSchema())
	for i := 1; i <= 10; i++ {
		tbl.MustInsert(Row{Int(int64(i)), Int(int64(i % 3)), String("v")})
	}
	if _, ok := tbl.Lookup("parentid", Int(1)); ok {
		t.Error("lookup should miss before index build")
	}
	if err := tbl.BuildIndex("parentid"); err != nil {
		t.Fatal(err)
	}
	rows, ok := tbl.Lookup("parentid", Int(1))
	if !ok {
		t.Fatal("index not used")
	}
	if len(rows) != 4 { // parentid 1: ids 1,4,7,10
		t.Errorf("lookup returned %d rows, want 4", len(rows))
	}
	if err := tbl.BuildIndex("nosuch"); err == nil {
		t.Error("index on missing column accepted")
	}
}

func TestStoreCatalog(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateTable(testSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(testSchema()); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := s.CreateTable(&TableSchema{Name: "", Columns: nil}); err == nil {
		t.Error("empty table name accepted")
	}
	if _, err := s.CreateTable(&TableSchema{Name: "U", Columns: []Column{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := s.CreateTable(&TableSchema{Name: "V", Columns: []Column{{Name: "a", Kind: KindInt}}, PrimaryKey: "b"}); err == nil {
		t.Error("primary key on missing column accepted")
	}
	if s.Table("T") == nil || s.Table("missing") != nil {
		t.Error("table lookup broken")
	}
	names := s.TableNames()
	if len(names) != 1 || names[0] != "T" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestStoreDumpDeterministic(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable(testSchema())
	tbl.MustInsert(Row{Int(2), Null, String("b")})
	tbl.MustInsert(Row{Int(1), Null, String("a")})
	d := s.Dump()
	if !strings.Contains(d, "TABLE T") || strings.Index(d, "(1, NULL, 'a')") > strings.Index(d, "(2, NULL, 'b')") {
		t.Errorf("dump not deterministic or missing rows:\n%s", d)
	}
}

func TestDropAllRows(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable(testSchema())
	tbl.MustInsert(Row{Int(1), Null, String("a")})
	s.DropAllRows()
	if s.TotalRows() != 0 {
		t.Error("DropAllRows left rows behind")
	}
	// The catalog must survive and the primary key index must be reset.
	if err := s.Table("T").Insert(Row{Int(1), Null, String("a")}); err != nil {
		t.Errorf("insert after DropAllRows: %v", err)
	}
}

func TestRowKeyMultisetSemantics(t *testing.T) {
	a := Row{Int(1), Null, String("x")}
	b := Row{Int(1), Null, String("x")}
	c := Row{Int(1), Int(0), String("x")}
	if a.Key() != b.Key() {
		t.Error("identical rows must share a key")
	}
	if a.Key() == c.Key() {
		t.Error("NULL and 0 must produce different row keys")
	}
}
