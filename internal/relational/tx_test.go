package relational

import (
	"strings"
	"testing"
)

// txStore builds a two-table store with a few rows and a hash index, the
// fixture for the StoreTx edge cases. Dump() is deterministic, so byte
// comparison of dumps is the correctness oracle throughout.
func txStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if _, err := s.CreateTable(testSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(&TableSchema{
		Name: "C",
		Columns: []Column{
			{Name: "id", Kind: KindInt},
			{Name: "parentid", Kind: KindInt},
			{Name: "w", Kind: KindString},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	tb := s.Table("T")
	for i := 1; i <= 4; i++ {
		tb.MustInsert(Row{Int(int64(i)), Null, String(strings.Repeat("t", i))})
	}
	c := s.Table("C")
	for i := 1; i <= 3; i++ {
		c.MustInsert(Row{Int(int64(10 + i)), Int(int64(i)), String("c")})
	}
	if err := c.BuildIndex("parentid"); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTxEmptyBatchCommit pins the degenerate batch: a transaction that
// mutates nothing must commit (and roll back) to a byte-identical store,
// and a finished transaction must refuse further mutations.
func TestTxEmptyBatchCommit(t *testing.T) {
	s := txStore(t)
	before := s.Dump()

	tx := s.Begin()
	tx.Commit()
	if got := s.Dump(); got != before {
		t.Fatalf("empty commit changed the store:\n%s", got)
	}
	if err := tx.Insert("T", Row{Int(99), Null, String("late")}); err == nil {
		t.Fatal("insert after commit succeeded")
	}

	tx = s.Begin()
	if err := tx.Rollback(); err != nil {
		t.Fatalf("empty rollback: %v", err)
	}
	if got := s.Dump(); got != before {
		t.Fatalf("empty rollback changed the store:\n%s", got)
	}
	if _, err := tx.DeleteWhere("T", func(Row) bool { return true }); err == nil {
		t.Fatal("delete after rollback succeeded")
	}
}

// TestTxRollbackAfterRollback pins double-finish semantics: the second
// Rollback is a nil no-op that must not replay the undo log again (a replay
// would re-insert deleted rows twice or undo an already-undone update), and
// Rollback after Commit must not unwind committed work.
func TestTxRollbackAfterRollback(t *testing.T) {
	s := txStore(t)
	before := s.Dump()

	tx := s.Begin()
	if err := tx.Insert("T", Row{Int(5), Null, String("new")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.DeleteWhere("C", func(r Row) bool { return r[0].Key() == Int(11).Key() }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("first rollback: %v", err)
	}
	after := s.Dump()
	if after != before {
		t.Fatalf("rollback did not restore the store:\nwant:\n%s\ngot:\n%s", before, after)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("second rollback: %v", err)
	}
	if got := s.Dump(); got != before {
		t.Fatalf("second rollback mutated the store:\n%s", got)
	}

	// Rollback after Commit keeps the committed mutation.
	tx = s.Begin()
	if err := tx.Insert("T", Row{Int(6), Null, String("kept")}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	committed := s.Dump()
	if committed == before {
		t.Fatal("committed insert not visible")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback after commit: %v", err)
	}
	if got := s.Dump(); got != committed {
		t.Fatalf("rollback after commit unwound committed work:\n%s", got)
	}
}

// TestTxRollbackAfterPartialReindex drives a batch through every mutation
// kind on an indexed table and rolls back midway through its logical work:
// each mutation rebuilt the hash index, so the rollback must restore not
// just the rows (byte-identical dump) but an index that still answers
// lookups for the restored contents.
func TestTxRollbackAfterPartialReindex(t *testing.T) {
	s := txStore(t)
	c := s.Table("C")
	before := s.Dump()

	tx := s.Begin()
	// Insert, update, and delete each trigger a reindex of C.parentid.
	if err := tx.Insert("C", Row{Int(14), Int(4), String("new")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateWhere("C",
		func(r Row) bool { return r[1].Key() == Int(2).Key() },
		func(r Row) Row { r[1] = Int(99); return r },
	); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.DeleteWhere("C", func(r Row) bool { return r[1].Key() == Int(3).Key() }); err != nil {
		t.Fatal(err)
	}
	// Mid-batch sanity: the index serves the mutated state.
	if rows, ok := c.Lookup("parentid", Int(99)); !ok || len(rows) != 1 {
		t.Fatalf("mid-batch index lookup parentid=99: ok=%v rows=%d", ok, len(rows))
	}

	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if got := s.Dump(); got != before {
		t.Fatalf("rollback after partial reindex not byte-identical:\nwant:\n%s\ngot:\n%s", before, got)
	}
	// The index must reflect the restored rows, not the rolled-back ones.
	for i := 1; i <= 3; i++ {
		rows, ok := c.Lookup("parentid", Int(int64(i)))
		if !ok || len(rows) != 1 {
			t.Fatalf("post-rollback index lookup parentid=%d: ok=%v rows=%d", i, ok, len(rows))
		}
	}
	if rows, ok := c.Lookup("parentid", Int(99)); ok && len(rows) != 0 {
		t.Fatalf("post-rollback index still serves rolled-back key: %v", rows)
	}
	if rows, ok := c.Lookup("parentid", Int(4)); ok && len(rows) != 0 {
		t.Fatalf("post-rollback index still serves rolled-back insert: %v", rows)
	}
}

// TestTxUnknownTable pins the error path: a mutation against a missing
// table fails without poisoning the transaction's undo log.
func TestTxUnknownTable(t *testing.T) {
	s := txStore(t)
	before := s.Dump()
	tx := s.Begin()
	if err := tx.Insert("T", Row{Int(7), Null, String("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("Nope", Row{Int(1)}); err == nil {
		t.Fatal("insert into missing table succeeded")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if got := s.Dump(); got != before {
		t.Fatalf("rollback after failed statement not byte-identical:\n%s", got)
	}
}
