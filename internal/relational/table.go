package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Kind Kind
}

// TableSchema is the definition of a table: its name, ordered columns, and
// the (single-column) primary key used by the shredded relations ("id").
type TableSchema struct {
	Name    string
	Columns []Column
	// PrimaryKey is the name of the primary key column, or "" if none.
	PrimaryKey string
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (s *TableSchema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the schema contains the named column.
func (s *TableSchema) HasColumn(name string) bool { return s.ColumnIndex(name) >= 0 }

// Clone returns a deep copy of the schema.
func (s *TableSchema) Clone() *TableSchema {
	c := &TableSchema{Name: s.Name, PrimaryKey: s.PrimaryKey}
	c.Columns = append([]Column(nil), s.Columns...)
	return c
}

// Row is a tuple; Row[i] corresponds to TableSchema.Columns[i].
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Key returns a hash key identifying the full tuple (used for multiset
// comparison of query results).
func (r Row) Key() string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.Key())
		b.WriteByte('|')
	}
	return b.String()
}

// Table is an in-memory heap of rows plus optional hash indexes.
//
// The read path (Rows, Lookup, Len, SortedRows) is safe for any number of
// concurrent readers, including readers overlapping with writers: an RWMutex
// guards the row heap and indexes, inserted rows are defensively cloned and
// never mutated afterwards, and indexes are maintained incrementally on
// insert rather than built lazily on first probe — the query engine only
// ever observes fully built indexes. This is what lets the engine evaluate
// UNION ALL branches (and whole queries, via Planner) from parallel
// goroutines against a shared store.
type Table struct {
	mu      sync.RWMutex
	schema  *TableSchema
	rows    []Row
	pkIndex map[string]int      // primary key value -> row ordinal
	indexes map[string]*hashIdx // column name -> index
	// version counts row mutations (inserts, deletes, updates). Statistics
	// snapshots record the store-level aggregate at collection time; a
	// mismatch later marks them stale, and the stats fingerprint embedded in
	// plan-cache keys then forces a re-plan (see internal/stats).
	version uint64
}

type hashIdx struct {
	col     int
	buckets map[string][]int
}

// NewTable creates an empty table with the given schema. If the schema names
// a primary key a uniqueness-enforcing index is maintained on it.
func NewTable(schema *TableSchema) *Table {
	t := &Table{schema: schema.Clone(), indexes: map[string]*hashIdx{}}
	if schema.PrimaryKey != "" {
		t.pkIndex = map[string]int{}
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *TableSchema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row. It validates arity, column kinds (NULL is allowed in
// any column except the primary key) and primary key uniqueness.
func (t *Table) Insert(r Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(r) != len(t.schema.Columns) {
		return fmt.Errorf("relational: table %s: insert arity %d, want %d", t.schema.Name, len(r), len(t.schema.Columns))
	}
	for i, v := range r {
		if v.IsNull() {
			continue
		}
		if v.Kind() != t.schema.Columns[i].Kind {
			return fmt.Errorf("relational: table %s: column %s: inserted %v, want %v",
				t.schema.Name, t.schema.Columns[i].Name, v.Kind(), t.schema.Columns[i].Kind)
		}
	}
	if t.pkIndex != nil {
		pi := t.schema.ColumnIndex(t.schema.PrimaryKey)
		v := r[pi]
		if v.IsNull() {
			return fmt.Errorf("relational: table %s: NULL primary key", t.schema.Name)
		}
		k := v.Key()
		if _, dup := t.pkIndex[k]; dup {
			return fmt.Errorf("relational: table %s: duplicate primary key %v", t.schema.Name, v)
		}
		t.pkIndex[k] = len(t.rows)
	}
	row := r.Clone()
	for _, idx := range t.indexes {
		idx.buckets[row[idx.col].Key()] = append(idx.buckets[row[idx.col].Key()], len(t.rows))
	}
	t.rows = append(t.rows, row)
	t.version++
	return nil
}

// Version returns the table's mutation counter: it advances on every
// successful Insert and on every DeleteWhere/UpdateWhere that changes rows.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// MustInsert inserts and panics on error; for tests and generators whose
// inputs are constructed correct.
func (t *Table) MustInsert(r Row) {
	if err := t.Insert(r); err != nil {
		panic(err)
	}
}

// Rows returns the table's rows. The slice and rows must not be mutated.
// The returned slice is a stable snapshot: concurrent inserts may extend the
// table but never touch the prefix a reader already holds.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// DeleteWhere removes every row for which pred returns true and returns how
// many were removed, rebuilding the primary-key and hash indexes. Unlike
// Insert it replaces the row slice (snapshots held by concurrent readers
// keep the old rows); quiesce serving before mutating tables it reads.
func (t *Table) DeleteWhere(pred func(Row) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := make([]Row, 0, len(t.rows))
	for _, r := range t.rows {
		if !pred(r) {
			kept = append(kept, r)
		}
	}
	n := len(t.rows) - len(kept)
	if n == 0 {
		return 0
	}
	t.rows = kept
	t.version++
	t.reindexLocked()
	return n
}

// UpdateWhere replaces every row for which pred returns true with fn(copy)
// and returns how many changed. The replacement rows are validated like
// inserts (arity, kinds, non-NULL unique primary keys); on any invalid
// replacement the table is left untouched and an error returned. The same
// reader caveat as DeleteWhere applies.
func (t *Table) UpdateWhere(pred func(Row) bool, fn func(Row) Row) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pi := -1
	if t.pkIndex != nil {
		pi = t.schema.ColumnIndex(t.schema.PrimaryKey)
	}
	next := make([]Row, 0, len(t.rows))
	seenPK := map[string]bool{}
	n := 0
	for _, r := range t.rows {
		if pred(r) {
			r = fn(r.Clone())
			n++
			if len(r) != len(t.schema.Columns) {
				return 0, fmt.Errorf("relational: table %s: update arity %d, want %d", t.schema.Name, len(r), len(t.schema.Columns))
			}
			for i, v := range r {
				if !v.IsNull() && v.Kind() != t.schema.Columns[i].Kind {
					return 0, fmt.Errorf("relational: table %s: column %s: updated %v, want %v",
						t.schema.Name, t.schema.Columns[i].Name, v.Kind(), t.schema.Columns[i].Kind)
				}
			}
		}
		if pi >= 0 {
			v := r[pi]
			if v.IsNull() {
				return 0, fmt.Errorf("relational: table %s: NULL primary key", t.schema.Name)
			}
			if seenPK[v.Key()] {
				return 0, fmt.Errorf("relational: table %s: duplicate primary key %v", t.schema.Name, v)
			}
			seenPK[v.Key()] = true
		}
		next = append(next, r)
	}
	if n == 0 {
		return 0, nil
	}
	t.rows = next
	t.version++
	t.reindexLocked()
	return n, nil
}

// reindexLocked rebuilds the primary-key map and every hash index from the
// current rows; callers hold t.mu.
func (t *Table) reindexLocked() {
	if t.pkIndex != nil {
		pi := t.schema.ColumnIndex(t.schema.PrimaryKey)
		t.pkIndex = make(map[string]int, len(t.rows))
		for i, r := range t.rows {
			t.pkIndex[r[pi].Key()] = i
		}
	}
	for col, idx := range t.indexes {
		fresh := &hashIdx{col: idx.col, buckets: map[string][]int{}}
		for i, r := range t.rows {
			k := r[idx.col].Key()
			fresh.buckets[k] = append(fresh.buckets[k], i)
		}
		t.indexes[col] = fresh
	}
}

// BuildIndex builds (or rebuilds) a hash index on the named column. Once
// built, the index is maintained incrementally by Insert. Build indexes
// before serving reads: the build itself takes the write lock, but readers
// that resolved the rows snapshot earlier may probe a stale index.
func (t *Table) BuildIndex(column string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("relational: table %s: no column %s", t.schema.Name, column)
	}
	idx := &hashIdx{col: ci, buckets: map[string][]int{}}
	for i, r := range t.rows {
		k := r[ci].Key()
		idx.buckets[k] = append(idx.buckets[k], i)
	}
	t.indexes[column] = idx
	return nil
}

// Lookup returns the rows whose named (indexed) column equals v. The second
// result reports whether an index on the column exists.
func (t *Table) Lookup(column string, v Value) ([]Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[column]
	if !ok {
		return nil, false
	}
	ords := idx.buckets[v.Key()]
	out := make([]Row, 0, len(ords))
	for _, o := range ords {
		out = append(out, t.rows[o])
	}
	return out, true
}

// LookupPK returns the row whose primary key equals v, probing the
// uniqueness index maintained by Insert. The second result is false when the
// table has no primary key or no row carries that key. The returned row must
// not be mutated.
func (t *Table) LookupPK(v Value) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pkIndex == nil {
		return nil, false
	}
	o, ok := t.pkIndex[v.Key()]
	if !ok {
		return nil, false
	}
	return t.rows[o], true
}

// SortedRows returns a copy of the rows in deterministic order (for golden
// tests and dumps).
func (t *Table) SortedRows() []Row {
	t.mu.RLock()
	rows := t.rows
	t.mu.RUnlock()
	out := make([]Row, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool { return rowLess(out[i], out[j]) })
	return out
}

func rowLess(a, b Row) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}
