package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store is a catalog of named tables — the relational database instance into
// which XML documents are shredded.
//
// The catalog is guarded by an RWMutex so table resolution is safe from
// concurrent query goroutines while shredding (which creates tables) runs in
// another phase or another goroutine; per-table row access has its own lock,
// see Table.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: map[string]*Table{}}
}

// CreateTable creates a table from the given schema. It fails if a table of
// that name already exists.
func (s *Store) CreateTable(schema *TableSchema) (*Table, error) {
	if schema.Name == "" {
		return nil, fmt.Errorf("relational: empty table name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[schema.Name]; exists {
		return nil, fmt.Errorf("relational: table %s already exists", schema.Name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Columns {
		if c.Name == "" {
			return nil, fmt.Errorf("relational: table %s: empty column name", schema.Name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("relational: table %s: duplicate column %s", schema.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if schema.PrimaryKey != "" && !schema.HasColumn(schema.PrimaryKey) {
		return nil, fmt.Errorf("relational: table %s: primary key %s is not a column", schema.Name, schema.PrimaryKey)
	}
	t := NewTable(schema)
	s.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (s *Store) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[name]
}

// TableNames returns all table names in sorted order.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// DropAllRows clears the contents of every table but keeps the catalog.
func (s *Store) DropAllRows() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, t := range s.tables {
		s.tables[name] = NewTable(t.schema)
	}
}

// Dump renders the whole store as text (deterministic ordering), for CLI
// output and golden tests.
func (s *Store) Dump() string {
	var b strings.Builder
	for _, name := range s.TableNames() {
		t := s.Table(name)
		fmt.Fprintf(&b, "TABLE %s (", name)
		for i, c := range t.schema.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
		}
		fmt.Fprintf(&b, ") [%d rows]\n", t.Len())
		for _, r := range t.SortedRows() {
			b.WriteString("  (")
			for i, v := range r {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(v.String())
			}
			b.WriteString(")\n")
		}
	}
	return b.String()
}

// BuildJoinIndexes creates hash indexes on the named column of every table
// that has it — typically "parentid", the join column of every translated
// query. The engine's index-probe path uses them automatically.
func (s *Store) BuildJoinIndexes(column string) error {
	for _, name := range s.TableNames() {
		t := s.Table(name)
		if !t.Schema().HasColumn(column) {
			continue
		}
		if err := t.BuildIndex(column); err != nil {
			return err
		}
	}
	return nil
}

// Version aggregates the mutation counters of every table (plus the table
// count, so creating a table also changes it). Statistics snapshots record
// it at collection time; comparing against the live value detects staleness
// without scanning any rows.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	v := uint64(len(tables))
	for _, t := range tables {
		v += t.Version()
	}
	return v
}

// TotalRows returns the number of rows across all tables.
func (s *Store) TotalRows() int {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	n := 0
	for _, t := range tables {
		n += t.Len()
	}
	return n
}
