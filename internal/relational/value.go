// Package relational implements the in-memory relational substrate used to
// execute the SQL produced by XML-to-SQL query translation.
//
// The engine is deliberately small but complete for the paper's needs: typed
// columns, tables with primary keys, a catalog, scans, and hash indexes. Query
// evaluation lives in package engine; this package owns storage.
package relational

import (
	"fmt"
	"strconv"
)

// Kind enumerates the value types the substrate supports. The shredded
// relations of the paper only require integers (ids, parentids, parentcodes)
// and strings (element text values), plus SQL NULL.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindString is an immutable string.
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics if the value is not an INT;
// callers must check Kind first (the engine always does).
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("relational: AsInt on %v value", v.kind))
	}
	return v.i
}

// AsString returns the string payload. It panics if the value is not a
// VARCHAR.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relational: AsString on %v value", v.kind))
	}
	return v.s
}

// Equal reports SQL equality between two values. NULL compares unequal to
// everything, including NULL, mirroring SQL's three-valued logic collapsed to
// boolean (a WHERE predicate only keeps rows whose comparison is TRUE).
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindString:
		return v.s == o.s
	}
	return false
}

// Identical reports whether two values are the same, with NULL identical to
// NULL. Used for multiset result comparison, not for WHERE evaluation.
func (v Value) Identical(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt:
		return v.i == o.i
	case KindString:
		return v.s == o.s
	}
	return false
}

// Compare orders values for deterministic output: NULL < INT < VARCHAR, then
// by payload. Returns -1, 0 or +1.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	}
	return 0
}

// Key returns a string usable as a hash key for joins and grouping. Distinct
// values map to distinct keys.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	default:
		return "s" + v.s
	}
}

// String renders the value in SQL literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	default:
		return "'" + v.s + "'"
	}
}
