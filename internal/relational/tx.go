package relational

import "fmt"

// StoreTx is an undo-log transaction over a Store: every mutation made
// through it records a compensating action, and Rollback replays those in
// reverse so the store returns to its pre-transaction contents. It exists
// for the XML update path, where a batch of DML must apply atomically — a
// failed statement mid-batch must leave the instance exactly as it was.
//
// StoreTx provides atomicity, not isolation: mutations are visible to
// concurrent readers as they happen (with the same snapshot caveats as
// DeleteWhere/UpdateWhere), and writers must be serialized externally —
// Planner.Update holds a write mutex for the whole batch.
type StoreTx struct {
	store *Store
	undo  []func() error
	done  bool
}

// Begin starts an undo-log transaction on the store.
func (s *Store) Begin() *StoreTx { return &StoreTx{store: s} }

func (tx *StoreTx) table(name string) (*Table, error) {
	if tx.done {
		return nil, fmt.Errorf("relational: transaction already finished")
	}
	t := tx.store.Table(name)
	if t == nil {
		return nil, fmt.Errorf("relational: no table %s", name)
	}
	return t, nil
}

// Insert appends a row to the named table, recording its removal as undo.
func (tx *StoreTx) Insert(table string, r Row) error {
	t, err := tx.table(table)
	if err != nil {
		return err
	}
	r = r.Clone()
	if err := t.Insert(r); err != nil {
		return err
	}
	tx.undo = append(tx.undo, func() error {
		removed := false
		var match func(Row) bool
		if pk := t.Schema().PrimaryKey; pk != "" {
			pi := t.Schema().ColumnIndex(pk)
			key := r[pi].Key()
			match = func(row Row) bool { return row[pi].Key() == key }
		} else {
			key := r.Key()
			match = func(row Row) bool { return row.Key() == key }
		}
		t.DeleteWhere(func(row Row) bool {
			if removed || !match(row) {
				return false
			}
			removed = true
			return true
		})
		if !removed {
			return fmt.Errorf("relational: table %s: undo insert: row vanished", table)
		}
		return nil
	})
	return nil
}

// DeleteWhere removes matching rows from the named table, recording their
// re-insertion as undo.
func (tx *StoreTx) DeleteWhere(table string, pred func(Row) bool) (int, error) {
	t, err := tx.table(table)
	if err != nil {
		return 0, err
	}
	var removed []Row
	n := t.DeleteWhere(func(r Row) bool {
		if pred(r) {
			removed = append(removed, r)
			return true
		}
		return false
	})
	if n > 0 {
		tx.undo = append(tx.undo, func() error {
			for _, r := range removed {
				if err := t.Insert(r); err != nil {
					return fmt.Errorf("relational: table %s: undo delete: %w", table, err)
				}
			}
			return nil
		})
	}
	return n, nil
}

// UpdateWhere rewrites matching rows in the named table, recording the
// restoration of the originals as undo.
func (tx *StoreTx) UpdateWhere(table string, pred func(Row) bool, fn func(Row) Row) (int, error) {
	t, err := tx.table(table)
	if err != nil {
		return 0, err
	}
	var olds, news []Row
	n, uerr := t.UpdateWhere(
		func(r Row) bool {
			if pred(r) {
				olds = append(olds, r.Clone())
				return true
			}
			return false
		},
		func(r Row) Row {
			nr := fn(r)
			news = append(news, nr.Clone())
			return nr
		},
	)
	if uerr != nil || n == 0 {
		return n, uerr
	}
	tx.undo = append(tx.undo, func() error {
		// Restore each rewritten row to its original, matching by the
		// rewritten contents (exact under a primary key; multiset-correct
		// without one).
		remaining := map[string][]Row{}
		for i := range news {
			k := news[i].Key()
			remaining[k] = append(remaining[k], olds[i])
		}
		restored := 0
		_, err := t.UpdateWhere(
			func(r Row) bool { return len(remaining[r.Key()]) > 0 },
			func(r Row) Row {
				k := r.Key()
				rs := remaining[k]
				remaining[k] = rs[1:]
				restored++
				return rs[0]
			},
		)
		if err != nil {
			return fmt.Errorf("relational: table %s: undo update: %w", table, err)
		}
		if restored != len(olds) {
			return fmt.Errorf("relational: table %s: undo update: restored %d of %d rows", table, restored, len(olds))
		}
		return nil
	})
	return n, nil
}

// Commit finalizes the transaction, discarding the undo log. The mutations
// are already applied; Commit only marks the transaction finished.
func (tx *StoreTx) Commit() {
	tx.undo = nil
	tx.done = true
}

// Rollback replays the undo log in reverse, returning the store to its
// pre-transaction contents. It is a no-op after Commit or a prior Rollback.
func (tx *StoreTx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	var first error
	for i := len(tx.undo) - 1; i >= 0; i-- {
		if err := tx.undo[i](); err != nil && first == nil {
			first = err
		}
	}
	tx.undo = nil
	return first
}
