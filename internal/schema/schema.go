// Package schema models annotated XML schema graphs — the XML-to-Relational
// mappings of the paper (§3.1).
//
// A schema is a rooted, edge-labelled directed graph. Nodes carry the XML
// element tag (Label) and the mapping annotations: an optional Relation name
// (the node's elements become tuples of that relation) and, for value-bearing
// nodes, a Column name (the element's text value is stored in that column).
// A node with a Column but no Relation stores its value in the tuple of its
// nearest relation-annotated ancestor. Edges may carry a condition
// ("parentcode = 1", "tag = 'Item'") that the shredder materializes in the
// child tuple and the translator uses as a selection.
//
// Schemas may be trees, DAGs, or recursive (cyclic) graphs; classification
// and the graph utilities the pruning algorithm needs (reachability,
// strongly connected components) live in graph.go.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"xmlsql/internal/relational"
)

// NodeID identifies a node within one Schema.
type NodeID int

// EdgeCond is an edge annotation: a selection "Column = Value" on the
// relation owning the edge's target (the next relation-annotated node at or
// below the edge on any path through it).
//
// With Neq set the condition is negative — "Column <> Value OR Column IS
// NULL". Mapping annotations never use Neq (the builder rejects it); it
// exists for the predicate-query extension, whose cross-product edges carry
// both satisfied (=) and unsatisfied (<>) branches of a step predicate.
type EdgeCond struct {
	Column string
	Value  relational.Value
	Neq    bool
}

// String renders the condition like "parentcode=1" (or "pc!=1").
func (c EdgeCond) String() string {
	op := "="
	if c.Neq {
		op = "!="
	}
	return c.Column + op + c.Value.String()
}

// Edge is a directed schema edge.
type Edge struct {
	From NodeID
	To   NodeID
	Cond *EdgeCond // nil if unannotated
}

// Node is a schema node.
type Node struct {
	ID    NodeID
	Name  string // stable identifier used by the DSL and in figures ("12")
	Label string // XML element tag ("Category")

	// Relation is the node annotation: elements matching this node become
	// tuples of the named relation. Empty for unannotated nodes (e.g. the
	// Regions and Africa nodes of Fig. 1).
	Relation string
	// Column: the element's text value is stored in this column of the
	// owning relation (the node's own Relation if set, otherwise the nearest
	// relation-annotated ancestor's).
	Column string
	// Conds are node-level conditions: columns of the node's own relation
	// that the shredder materializes for every tuple of this node and that
	// translation uses as selections. The schema-oblivious Edge mapping's
	// "tag = '<label>'" is the canonical example (§5.3) — unlike an edge
	// condition it also applies to the root, which has no incoming edge.
	// Only relation-annotated nodes may carry Conds.
	Conds []EdgeCond

	children []Edge
	parents  []Edge
}

// Children returns the outgoing edges in insertion order.
func (n *Node) Children() []Edge { return n.children }

// Parents returns the incoming edges in insertion order.
func (n *Node) Parents() []Edge { return n.parents }

// IsLeaf reports whether the node has no outgoing edges.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// HasRelation reports whether the node is annotated with a relation.
func (n *Node) HasRelation() bool { return n.Relation != "" }

// Schema is an annotated XML schema graph.
type Schema struct {
	Name   string
	nodes  []*Node
	byName map[string]NodeID
	root   NodeID
	fpc    fingerprintCache
}

// Root returns the root node's id.
func (s *Schema) Root() NodeID { return s.root }

// RootNode returns the root node.
func (s *Schema) RootNode() *Node { return s.nodes[s.root] }

// Node returns the node with the given id. It panics on an id not issued by
// this schema (a program bug, never data-dependent).
func (s *Schema) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(s.nodes) {
		panic(fmt.Sprintf("schema: bad node id %d", id))
	}
	return s.nodes[id]
}

// NodeByName returns the node with the given DSL name, or nil.
func (s *Schema) NodeByName(name string) *Node {
	id, ok := s.byName[name]
	if !ok {
		return nil
	}
	return s.nodes[id]
}

// Nodes returns all nodes in id order. The slice must not be mutated.
func (s *Schema) Nodes() []*Node { return s.nodes }

// NumNodes returns the number of nodes.
func (s *Schema) NumNodes() int { return len(s.nodes) }

// Edges returns every edge of the schema.
func (s *Schema) Edges() []Edge {
	var out []Edge
	for _, n := range s.nodes {
		out = append(out, n.children...)
	}
	return out
}

// EdgeBetween returns the edge from -> to, or nil if none exists.
func (s *Schema) EdgeBetween(from, to NodeID) *Edge {
	for i := range s.nodes[from].children {
		if s.nodes[from].children[i].To == to {
			return &s.nodes[from].children[i]
		}
	}
	return nil
}

// Relations returns the sorted set of relation names used in annotations.
func (s *Schema) Relations() []string {
	set := map[string]bool{}
	for _, n := range s.nodes {
		if n.Relation != "" {
			set[n.Relation] = true
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural well-formedness: a root that reaches every
// node, no dangling edges, value columns resolvable to an owning relation,
// and edge conditions attached where an owning relation exists.
func (s *Schema) Validate() error {
	if len(s.nodes) == 0 {
		return fmt.Errorf("schema %s: empty", s.Name)
	}
	reach := s.ReachableFromRoot()
	for _, n := range s.nodes {
		if !reach[n.ID] {
			return fmt.Errorf("schema %s: node %s unreachable from root", s.Name, n.Name)
		}
		if n.Label == "" {
			return fmt.Errorf("schema %s: node %s has empty label", s.Name, n.Name)
		}
		if n.Column != "" {
			if _, err := s.OwnerRelation(n.ID); err != nil {
				return err
			}
		}
		if len(n.Conds) > 0 && !n.HasRelation() {
			return fmt.Errorf("schema %s: node %s has node conditions but no relation", s.Name, n.Name)
		}
		for _, c := range n.Conds {
			if c.Neq {
				return fmt.Errorf("schema %s: node %s: negative conditions are not allowed in mappings", s.Name, n.Name)
			}
		}
	}
	for _, e := range s.Edges() {
		if e.Cond != nil && e.Cond.Neq {
			return fmt.Errorf("schema %s: negative edge conditions are not allowed in mappings", s.Name)
		}
	}
	// Every edge condition must have a downstream owning relation.
	for _, e := range s.Edges() {
		if e.Cond == nil {
			continue
		}
		if !s.hasDownstreamRelation(e.To, map[NodeID]bool{}) {
			return fmt.Errorf("schema %s: edge %s->%s condition %s has no owning relation",
				s.Name, s.nodes[e.From].Name, s.nodes[e.To].Name, e.Cond)
		}
	}
	return nil
}

func (s *Schema) hasDownstreamRelation(id NodeID, seen map[NodeID]bool) bool {
	if seen[id] {
		return false
	}
	seen[id] = true
	n := s.nodes[id]
	if n.HasRelation() {
		return true
	}
	for _, e := range n.children {
		if s.hasDownstreamRelation(e.To, seen) {
			return true
		}
	}
	return false
}

// OwnerRelation resolves the relation owning a node's value column: the
// node's own relation if annotated, else the unique nearest
// relation-annotated proper ancestor. An error is returned when no owner
// exists or when distinct ancestor chains yield different owners (the
// mapping would be ambiguous).
func (s *Schema) OwnerRelation(id NodeID) (string, error) {
	n := s.nodes[id]
	if n.HasRelation() {
		return n.Relation, nil
	}
	owners := map[string]bool{}
	s.collectOwners(id, map[NodeID]bool{}, owners)
	switch len(owners) {
	case 0:
		return "", fmt.Errorf("schema %s: node %s has no owning relation", s.Name, n.Name)
	case 1:
		for r := range owners {
			return r, nil
		}
	}
	names := make([]string, 0, len(owners))
	for r := range owners {
		names = append(names, r)
	}
	sort.Strings(names)
	return "", fmt.Errorf("schema %s: node %s has ambiguous owning relations %v", s.Name, n.Name, names)
}

func (s *Schema) collectOwners(id NodeID, seen map[NodeID]bool, owners map[string]bool) {
	if seen[id] {
		return
	}
	seen[id] = true
	for _, e := range s.nodes[id].parents {
		p := s.nodes[e.From]
		if p.HasRelation() {
			owners[p.Relation] = true
			continue
		}
		s.collectOwners(p.ID, seen, owners)
	}
}

// Annot returns the node's value annotation as "Relation.Column" (for
// column-bearing nodes) or "Relation.id" (for relation-annotated nodes
// without a value column, whose query result is the elemid). It errors on
// unannotated nodes, which have no retrievable value.
func (s *Schema) Annot(id NodeID) (rel, col string, err error) {
	n := s.nodes[id]
	if n.Column != "" {
		rel, err = s.OwnerRelation(id)
		return rel, n.Column, err
	}
	if n.HasRelation() {
		return n.Relation, IDColumn, nil
	}
	return "", "", fmt.Errorf("schema %s: node %s has no annotation", s.Name, n.Name)
}

// Reserved column names materialized by the shredder in every relation.
const (
	IDColumn       = "id"
	ParentIDColumn = "parentid"
)

// String renders the schema in the DSL syntax (round-trips through Parse).
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s\n", s.Name)
	fmt.Fprintf(&b, "root %s\n", s.nodes[s.root].Name)
	for _, n := range s.nodes {
		fmt.Fprintf(&b, "node %s label=%s", n.Name, n.Label)
		if n.Relation != "" {
			fmt.Fprintf(&b, " rel=%s", n.Relation)
		}
		if n.Column != "" {
			fmt.Fprintf(&b, " col=%s", n.Column)
		}
		for _, c := range n.Conds {
			fmt.Fprintf(&b, " cond=%s", c)
		}
		b.WriteString("\n")
	}
	for _, n := range s.nodes {
		for _, e := range n.children {
			fmt.Fprintf(&b, "edge %s -> %s", n.Name, s.nodes[e.To].Name)
			if e.Cond != nil {
				fmt.Fprintf(&b, " [%s]", e.Cond)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
