package schema

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// fingerprint memoization; schemas are immutable once built, so the hash is
// computed at most once.
type fingerprintCache struct {
	once sync.Once
	fp   string
}

// Fingerprint returns a stable structural hash of the schema: two schemas
// have the same fingerprint iff they render to the same DSL text (same
// nodes, labels, annotations, conditions, and edges in the same order).
// It is the cache-invalidation token of the plan cache: a translation is
// reusable exactly as long as the mapping it was derived from is unchanged,
// so cache keys embed the fingerprint and entries for an older mapping
// simply stop being hit.
//
// The value is memoized; after the first call Fingerprint is a pointer read.
func (s *Schema) Fingerprint() string {
	s.fpc.once.Do(func() {
		h := sha256.Sum256([]byte(s.String()))
		s.fpc.fp = hex.EncodeToString(h[:16])
	})
	return s.fpc.fp
}
