package schema

import (
	"strings"
	"testing"

	"xmlsql/internal/relational"
)

func small() *Schema {
	return NewBuilder("t").
		Node("r", "root", Rel("R")).
		Node("a", "a", Rel("A")).
		Node("s", "s").
		Node("b", "b", Rel("B")).
		Node("v", "v", Col("val")).
		Root("r").
		Edge("r", "a").
		Edge("r", "s").
		EdgeCondInt("s", "b", "pc", 1).
		Edge("b", "v").
		MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	s := small()
	if s.NumNodes() != 5 {
		t.Errorf("NumNodes = %d", s.NumNodes())
	}
	if s.RootNode().Name != "r" {
		t.Errorf("root = %s", s.RootNode().Name)
	}
	if s.NodeByName("b") == nil || s.NodeByName("zz") != nil {
		t.Error("NodeByName broken")
	}
	if got := s.Relations(); len(got) != 3 || got[0] != "A" {
		t.Errorf("Relations = %v", got)
	}
	e := s.EdgeBetween(s.NodeByName("s").ID, s.NodeByName("b").ID)
	if e == nil || e.Cond == nil || e.Cond.Column != "pc" {
		t.Error("edge condition lost")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []func() (*Schema, error){
		func() (*Schema, error) { return NewBuilder("x").Build() },
		func() (*Schema, error) { return NewBuilder("x").Node("a", "a").Build() }, // no root
		func() (*Schema, error) { return NewBuilder("x").Node("a", "a").Node("a", "a").Root("a").Build() },
		func() (*Schema, error) { return NewBuilder("x").Node("a", "a").Root("b").Build() },
		func() (*Schema, error) {
			return NewBuilder("x").Node("a", "a").Node("b", "b").Root("a").Edge("a", "b").Edge("a", "b").Build()
		},
		func() (*Schema, error) { // unreachable node
			return NewBuilder("x").Node("a", "a").Node("b", "b").Root("a").Build()
		},
		func() (*Schema, error) { // value column with no owner
			return NewBuilder("x").Node("a", "a", Col("v")).Root("a").Build()
		},
		func() (*Schema, error) { // node conds on unannotated node
			return NewBuilder("x").Node("a", "a", CondInt("c", 1)).Root("a").Build()
		},
	}
	for i, f := range cases {
		if _, err := f(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestClassify(t *testing.T) {
	if got := small().Classify(); got != ShapeTree {
		t.Errorf("tree classified as %v", got)
	}
	dag := NewBuilder("d").
		Node("r", "r", Rel("R")).
		Node("a", "a", Rel("A")).
		Node("b", "b", Rel("B")).
		Node("c", "c", Rel("C")).
		Root("r").
		Edge("r", "a").Edge("r", "b").Edge("a", "c").Edge("b", "c").
		MustBuild()
	if got := dag.Classify(); got != ShapeDAG {
		t.Errorf("dag classified as %v", got)
	}
	rec := NewBuilder("rec").
		Node("r", "r", Rel("R")).
		Node("a", "a", Rel("A")).
		Root("r").
		Edge("r", "a").Edge("a", "r").
		MustBuild()
	if got := rec.Classify(); got != ShapeRecursive {
		t.Errorf("recursive classified as %v", got)
	}
}

func TestSCCs(t *testing.T) {
	rec := NewBuilder("rec").
		Node("r", "r", Rel("R0")).
		Node("a", "a", Rel("R1")).
		Node("b", "b", Rel("R2")).
		Node("c", "c", Rel("R3")).
		Root("r").
		Edge("r", "a").Edge("a", "b").Edge("b", "a").Edge("b", "c").
		MustBuild()
	comp, recursive := rec.SCCOf()
	aid := rec.NodeByName("a").ID
	bid := rec.NodeByName("b").ID
	cid := rec.NodeByName("c").ID
	if comp[aid] != comp[bid] {
		t.Error("a and b must share a component")
	}
	if comp[aid] == comp[cid] {
		t.Error("c must not be in the cycle's component")
	}
	if !recursive[comp[aid]] || recursive[comp[cid]] {
		t.Error("recursive flags wrong")
	}
}

func TestOwnerRelationAndAnnot(t *testing.T) {
	s := small()
	rel, err := s.OwnerRelation(s.NodeByName("v").ID)
	if err != nil || rel != "B" {
		t.Errorf("OwnerRelation(v) = %s, %v", rel, err)
	}
	r, c, err := s.Annot(s.NodeByName("v").ID)
	if err != nil || r != "B" || c != "val" {
		t.Errorf("Annot(v) = %s.%s, %v", r, c, err)
	}
	r, c, err = s.Annot(s.NodeByName("a").ID)
	if err != nil || r != "A" || c != IDColumn {
		t.Errorf("Annot(a) = %s.%s, %v", r, c, err)
	}
	if _, _, err := s.Annot(s.NodeByName("s").ID); err == nil {
		t.Error("Annot of structural node must fail")
	}
}

func TestDeriveRelations(t *testing.T) {
	s := small()
	defs, err := s.DeriveRelations()
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 3 {
		t.Fatalf("derived %d relations, want 3", len(defs))
	}
	b := defs["B"]
	if len(b.CondColumns) != 1 || b.CondColumns[0].Name != "pc" || b.CondColumns[0].Kind != relational.KindInt {
		t.Errorf("B cond columns = %v", b.CondColumns)
	}
	if len(b.ValueColumns) != 1 || b.ValueColumns[0].Name != "val" {
		t.Errorf("B value columns = %v", b.ValueColumns)
	}
	ts := b.TableSchema()
	if ts.PrimaryKey != IDColumn || ts.Columns[0].Name != IDColumn || ts.Columns[1].Name != ParentIDColumn {
		t.Errorf("table schema layout wrong: %+v", ts)
	}
}

func TestDeriveRelationsConflicts(t *testing.T) {
	// A column used both as condition and value must be rejected.
	s := NewBuilder("bad").
		Node("r", "r", Rel("R")).
		Node("a", "a", Rel("A")).
		Node("v", "v", Col("pc")).
		Root("r").
		EdgeCondInt("r", "a", "pc", 1).
		Edge("a", "v").
		MustBuild()
	if _, err := s.DeriveRelations(); err == nil {
		t.Error("cond/value column clash accepted")
	}
	// Reserved column names are rejected.
	s2 := NewBuilder("bad2").
		Node("r", "r", Rel("R")).
		Node("v", "v", Col("parentid")).
		Root("r").
		Edge("r", "v").
		MustBuild()
	if _, err := s2.DeriveRelations(); err == nil {
		t.Error("reserved value column accepted")
	}
}

func TestElemidColumnConvention(t *testing.T) {
	s := NewBuilder("e").
		Node("r", "r", Rel("R")).
		Node("eid", "elemid", Col(IDColumn)).
		Root("r").
		Edge("r", "eid").
		MustBuild()
	defs, err := s.DeriveRelations()
	if err != nil {
		t.Fatal(err)
	}
	if len(defs["R"].ValueColumns) != 0 {
		t.Error("elemid leaf must not add a value column")
	}
	rel, col, err := s.Annot(s.NodeByName("eid").ID)
	if err != nil || rel != "R" || col != IDColumn {
		t.Errorf("Annot(elemid) = %s.%s, %v", rel, col, err)
	}
}

func TestDSLRoundTrip(t *testing.T) {
	s := small()
	text := s.String()
	re, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if re.String() != text {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", text, re.String())
	}
}

func TestDSLNodeConds(t *testing.T) {
	s := MustParse(`
schema edge
root r
node r label=Site rel=Edge cond=tag='Site'
node c label=Item rel=Edge cond=tag='Item' col=value
edge r -> c
`)
	root := s.RootNode()
	if len(root.Conds) != 1 || root.Conds[0].Column != "tag" || root.Conds[0].Value.AsString() != "Site" {
		t.Errorf("root conds = %v", root.Conds)
	}
	if !strings.Contains(s.String(), "cond=tag='Site'") {
		t.Errorf("node cond not rendered:\n%s", s)
	}
}

func TestDSLErrors(t *testing.T) {
	bad := []string{
		"",
		"schema x\nroot a\nnode a\n", // missing label
		"schema x\nroot a\nnode a label=a badattr=1\n",            // unknown attr
		"schema x\nroot a\nnode a label=a\nedge a b\n",            // missing ->
		"schema x\nroot a\nnode a label=a\nedge a -> a [pc]\n",    // bad cond
		"schema x\nroot a\nnode a label=a\nedge a -> a [pc=zz]\n", // bad literal
		"schema x\nnode a label=a\n",                              // no root
		"schema x\nschema y\nroot a\nnode a label=a\n",            // duplicate schema
		"schema x\nroot a\nnode a label=a cond=tag\n",             // bad node cond
		"blah x\n", // unknown directive
		"schema x\nroot a\nnode a label=a\nedge a -> missing\n",                  // unknown target
		"schema x\nroot a\nnode a label=a\nnode a label=b\n",                     // duplicate node
		"schema x\nroot zz\nnode a label=a\n",                                    // unknown root
		"schema x\nroot a\nnode a label=a\nedge a -> a [pc=1\n",                  // unterminated cond
		"schema x\nroot a\nnode a label=a col=v\n",                               // col without owner
		"schema x\nroot a\nnode a label=a\nnode b label=b\nedge a -> b [pc=1]\n", // cond with no owning relation
	}
	for i, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("case %d: Parse accepted %q", i, in)
		}
	}
}

func TestLeafNodesOfColumn(t *testing.T) {
	s := small()
	nodes := s.LeafNodesOfColumn("B", "val")
	if len(nodes) != 1 || s.Node(nodes[0]).Name != "v" {
		t.Errorf("LeafNodesOfColumn = %v", nodes)
	}
	ids := s.LeafNodesOfColumn("A", IDColumn)
	if len(ids) != 1 {
		t.Errorf("LeafNodesOfColumn(A.id) = %v", ids)
	}
}

func TestValidateCatchesUnannotatedCondTarget(t *testing.T) {
	b := NewBuilder("x").
		Node("r", "r", Rel("R")).
		Node("s", "s").
		Node("v", "v", Col("val")).
		Root("r").
		EdgeCondInt("r", "s", "pc", 1).
		Edge("s", "v")
	if _, err := b.Build(); err == nil {
		t.Error("edge condition with no downstream relation accepted")
	}
}
