package schema

import (
	"fmt"

	"xmlsql/internal/relational"
)

// Builder constructs schemas programmatically. Errors are accumulated and
// reported by Build, so fluent construction code stays linear.
type Builder struct {
	s    *Schema
	errs []error
}

// NewBuilder starts a schema with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{s: &Schema{Name: name, byName: map[string]NodeID{}, root: -1}}
}

// NodeOpt configures a node under construction.
type NodeOpt func(*Node)

// Rel annotates the node with a relation name.
func Rel(relation string) NodeOpt {
	return func(n *Node) { n.Relation = relation }
}

// Col annotates the node with a value column (stored in the owning
// relation).
func Col(column string) NodeOpt {
	return func(n *Node) { n.Column = column }
}

// CondInt attaches a node-level condition "column = value" (integer) to a
// relation-annotated node.
func CondInt(column string, value int64) NodeOpt {
	return func(n *Node) {
		n.Conds = append(n.Conds, EdgeCond{Column: column, Value: relational.Int(value)})
	}
}

// CondString attaches a node-level condition "column = 'value'".
func CondString(column, value string) NodeOpt {
	return func(n *Node) {
		n.Conds = append(n.Conds, EdgeCond{Column: column, Value: relational.String(value)})
	}
}

// Node adds a node with the given unique name and XML tag label.
func (b *Builder) Node(name, label string, opts ...NodeOpt) *Builder {
	if _, dup := b.s.byName[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("schema %s: duplicate node name %s", b.s.Name, name))
		return b
	}
	n := &Node{ID: NodeID(len(b.s.nodes)), Name: name, Label: label}
	for _, o := range opts {
		o(n)
	}
	b.s.nodes = append(b.s.nodes, n)
	b.s.byName[name] = n.ID
	return b
}

// Root marks the named node as the schema root.
func (b *Builder) Root(name string) *Builder {
	id, ok := b.s.byName[name]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("schema %s: root %s not defined", b.s.Name, name))
		return b
	}
	b.s.root = id
	return b
}

// Edge adds an unannotated edge between two named nodes.
func (b *Builder) Edge(from, to string) *Builder {
	return b.edge(from, to, nil)
}

// EdgeCondInt adds an edge annotated with "column = value" (integer).
func (b *Builder) EdgeCondInt(from, to, column string, value int64) *Builder {
	return b.edge(from, to, &EdgeCond{Column: column, Value: relational.Int(value)})
}

// EdgeCondString adds an edge annotated with "column = 'value'".
func (b *Builder) EdgeCondString(from, to, column, value string) *Builder {
	return b.edge(from, to, &EdgeCond{Column: column, Value: relational.String(value)})
}

func (b *Builder) edge(from, to string, cond *EdgeCond) *Builder {
	fid, ok := b.s.byName[from]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("schema %s: edge source %s not defined", b.s.Name, from))
		return b
	}
	tid, ok := b.s.byName[to]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("schema %s: edge target %s not defined", b.s.Name, to))
		return b
	}
	if b.s.EdgeBetween(fid, tid) != nil {
		b.errs = append(b.errs, fmt.Errorf("schema %s: duplicate edge %s -> %s", b.s.Name, from, to))
		return b
	}
	e := Edge{From: fid, To: tid, Cond: cond}
	b.s.nodes[fid].children = append(b.s.nodes[fid].children, e)
	b.s.nodes[tid].parents = append(b.s.nodes[tid].parents, e)
	return b
}

// Build validates and returns the schema.
func (b *Builder) Build() (*Schema, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.s.root < 0 {
		return nil, fmt.Errorf("schema %s: no root declared", b.s.Name)
	}
	if err := b.s.Validate(); err != nil {
		return nil, err
	}
	return b.s, nil
}

// MustBuild builds and panics on error; for statically-known schemas such as
// the paper's figures.
func (b *Builder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}
