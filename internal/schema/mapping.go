package schema

import (
	"fmt"
	"sort"

	"xmlsql/internal/relational"
)

// RelationDef is the derived definition of one shredded relation.
type RelationDef struct {
	Name string
	// CondColumns are columns materialized from edge conditions
	// ("parentcode", "pc", "tag"), with their inferred kinds.
	CondColumns []relational.Column
	// ValueColumns hold element text values.
	ValueColumns []relational.Column
}

// TableSchema renders the relation as a table schema: id (pk), parentid,
// then condition columns, then value columns, all in deterministic order.
func (r *RelationDef) TableSchema() *relational.TableSchema {
	cols := []relational.Column{
		{Name: IDColumn, Kind: relational.KindInt},
		{Name: ParentIDColumn, Kind: relational.KindInt},
	}
	cols = append(cols, r.CondColumns...)
	cols = append(cols, r.ValueColumns...)
	return &relational.TableSchema{Name: r.Name, Columns: cols, PrimaryKey: IDColumn}
}

// DeriveRelations computes the relational schema implied by the mapping
// annotations: one relation per distinct node annotation, carrying every
// condition column appearing on edges owned by the relation and every value
// column stored into it. Kinds are inferred from the condition literals;
// value columns are VARCHAR.
func (s *Schema) DeriveRelations() (map[string]*RelationDef, error) {
	defs := map[string]*RelationDef{}
	get := func(name string) *RelationDef {
		d, ok := defs[name]
		if !ok {
			d = &RelationDef{Name: name}
			defs[name] = d
		}
		return d
	}

	for _, n := range s.nodes {
		if n.HasRelation() {
			d := get(n.Relation)
			for _, c := range n.Conds {
				if err := addColumn(d, c.Column, c.Value.Kind(), true); err != nil {
					return nil, fmt.Errorf("schema %s: %v", s.Name, err)
				}
			}
		}
	}

	// Condition columns: each annotated edge's condition lands in the
	// relation owning the edge target. "Owning" follows unannotated chains
	// downward: the condition applies to the next relation-annotated node at
	// or below the target on any path. Collect the set of such relations.
	for _, e := range s.Edges() {
		if e.Cond == nil {
			continue
		}
		owners := map[string]bool{}
		s.collectDownstreamRelations(e.To, map[NodeID]bool{}, owners)
		if len(owners) == 0 {
			return nil, fmt.Errorf("schema %s: edge condition %s has no owning relation", s.Name, e.Cond)
		}
		for rel := range owners {
			if err := addColumn(get(rel), e.Cond.Column, e.Cond.Value.Kind(), true); err != nil {
				return nil, fmt.Errorf("schema %s: %v", s.Name, err)
			}
		}
	}

	// Value columns. Column == IDColumn is the elemid convention: the node
	// exposes the owning relation's existing id column (the paper's queries
	// Q4–Q7 end in "/elemid"); no new column is created.
	for _, n := range s.nodes {
		if n.Column == "" || n.Column == IDColumn {
			continue
		}
		rel, err := s.OwnerRelation(n.ID)
		if err != nil {
			return nil, err
		}
		if err := addColumn(get(rel), n.Column, relational.KindString, false); err != nil {
			return nil, fmt.Errorf("schema %s: %v", s.Name, err)
		}
	}

	for _, d := range defs {
		sortColumns(d.CondColumns)
		sortColumns(d.ValueColumns)
	}
	return defs, nil
}

// collectDownstreamRelations gathers the relations of the nearest
// relation-annotated nodes at or below id.
func (s *Schema) collectDownstreamRelations(id NodeID, seen map[NodeID]bool, out map[string]bool) {
	if seen[id] {
		return
	}
	seen[id] = true
	n := s.nodes[id]
	if n.HasRelation() {
		out[n.Relation] = true
		return
	}
	for _, e := range n.children {
		s.collectDownstreamRelations(e.To, seen, out)
	}
}

func addColumn(d *RelationDef, name string, kind relational.Kind, cond bool) error {
	if name == IDColumn || name == ParentIDColumn {
		return fmt.Errorf("relation %s: column %s is reserved", d.Name, name)
	}
	target := &d.ValueColumns
	other := &d.CondColumns
	if cond {
		target, other = other, target
	}
	for _, c := range *other {
		if c.Name == name {
			return fmt.Errorf("relation %s: column %s used both as condition and value column", d.Name, name)
		}
	}
	for _, c := range *target {
		if c.Name == name {
			if c.Kind != kind {
				return fmt.Errorf("relation %s: column %s has conflicting kinds %v and %v", d.Name, name, c.Kind, kind)
			}
			return nil
		}
	}
	*target = append(*target, relational.Column{Name: name, Kind: kind})
	return nil
}

func sortColumns(cols []relational.Column) {
	sort.Slice(cols, func(i, j int) bool { return cols[i].Name < cols[j].Name })
}

// CreateTables registers every derived relation in the store.
func (s *Schema) CreateTables(store *relational.Store) error {
	defs, err := s.DeriveRelations()
	if err != nil {
		return err
	}
	names := make([]string, 0, len(defs))
	for n := range defs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := store.CreateTable(defs[n].TableSchema()); err != nil {
			return err
		}
	}
	return nil
}
