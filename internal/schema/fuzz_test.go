package schema

import "testing"

// FuzzParse checks the DSL parser never panics and that accepted schemas
// round-trip through String.
func FuzzParse(f *testing.F) {
	f.Add("schema x\nroot a\nnode a label=a rel=R\n")
	f.Add("schema x\nroot a\nnode a label=a rel=R\nnode b label=b col=v\nedge a -> b\n")
	f.Add("schema x\nroot a\nnode a label=a rel=R cond=tag='a'\nedge a -> a [pc=1]\n")
	f.Add("node a\nroot\n# comment\n")
	f.Add("schema s\nroot r\nnode r label=r rel=R\nedge r -> r\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return
		}
		text := s.String()
		s2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse failed: %v\noriginal input: %q\nrendered:\n%s", err, input, text)
		}
		if s2.String() != text {
			t.Fatalf("round trip not stable for %q", input)
		}
		// Accepted schemas must also survive relational derivation or fail
		// cleanly (no panics).
		_, _ = s.DeriveRelations()
		_ = s.Classify()
	})
}
