package schema

// Shape classifies the schema graph; the pruning algorithm differs between
// the tree case (§4) and the DAG/recursive case (§5).
type Shape uint8

// Schema graph shapes.
const (
	ShapeTree Shape = iota
	ShapeDAG
	ShapeRecursive
)

func (s Shape) String() string {
	switch s {
	case ShapeTree:
		return "tree"
	case ShapeDAG:
		return "dag"
	default:
		return "recursive"
	}
}

// Classify reports whether the schema is a tree, a DAG, or recursive.
func (s *Schema) Classify() Shape {
	if s.hasCycle() {
		return ShapeRecursive
	}
	for _, n := range s.nodes {
		if len(n.parents) > 1 {
			return ShapeDAG
		}
	}
	return ShapeTree
}

func (s *Schema) hasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(s.nodes))
	var visit func(NodeID) bool
	visit = func(id NodeID) bool {
		color[id] = gray
		for _, e := range s.nodes[id].children {
			switch color[e.To] {
			case gray:
				return true
			case white:
				if visit(e.To) {
					return true
				}
			}
		}
		color[id] = black
		return false
	}
	for _, n := range s.nodes {
		if color[n.ID] == white {
			if visit(n.ID) {
				return true
			}
		}
	}
	return false
}

// ReachableFromRoot returns the set of nodes reachable from the root.
func (s *Schema) ReachableFromRoot() map[NodeID]bool {
	seen := map[NodeID]bool{}
	stack := []NodeID{s.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		for _, e := range s.nodes[id].children {
			if !seen[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// SCCs computes strongly connected components with Tarjan's algorithm
// (iterative). Components are returned in reverse topological order; each
// component lists its member node ids. Trivial (single-node, non-self-loop)
// components are included.
func (s *Schema) SCCs() [][]NodeID {
	n := len(s.nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []NodeID
	var comps [][]NodeID
	counter := 0

	type frame struct {
		id    NodeID
		child int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		var call []frame
		call = append(call, frame{id: NodeID(start)})
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, NodeID(start))
		onStack[start] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			node := s.nodes[f.id]
			if f.child < len(node.children) {
				to := node.children[f.child].To
				f.child++
				if index[to] == -1 {
					index[to] = counter
					low[to] = counter
					counter++
					stack = append(stack, to)
					onStack[to] = true
					call = append(call, frame{id: to})
				} else if onStack[to] {
					if index[to] < low[f.id] {
						low[f.id] = index[to]
					}
				}
				continue
			}
			// Finished node.
			if low[f.id] == index[f.id] {
				var comp []NodeID
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == f.id {
						break
					}
				}
				comps = append(comps, comp)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := &call[len(call)-1]
				if low[f.id] < low[parent.id] {
					low[parent.id] = low[f.id]
				}
			}
		}
	}
	return comps
}

// SCCOf returns, for every node, the id of its strongly connected component
// (an arbitrary but stable small integer), plus a set of component ids that
// are recursive (contain a cycle: more than one node, or a self-loop).
func (s *Schema) SCCOf() (comp []int, recursive map[int]bool) {
	comps := s.SCCs()
	comp = make([]int, len(s.nodes))
	recursive = map[int]bool{}
	for ci, members := range comps {
		for _, id := range members {
			comp[id] = ci
		}
	}
	for ci, members := range comps {
		if len(members) > 1 {
			recursive[ci] = true
			continue
		}
		id := members[0]
		for _, e := range s.nodes[id].children {
			if e.To == id {
				recursive[ci] = true
			}
		}
	}
	return comp, recursive
}

// RelationAnnotatedOnPathExists reports whether some descendant-or-self of
// id (following edges downward) has a relation annotation. Used when
// deciding where a pending edge condition lands.
func (s *Schema) RelationAnnotatedOnPathExists(id NodeID) bool {
	return s.hasDownstreamRelation(id, map[NodeID]bool{})
}

// LeafNodesOfColumn returns all nodes whose value annotation is exactly
// rel.col — the paper's LeafNodes(R.C). Relation-annotated nodes count for
// (rel, "id") since their retrievable value is the elemid.
func (s *Schema) LeafNodesOfColumn(rel, col string) []NodeID {
	var out []NodeID
	for _, n := range s.nodes {
		r, c, err := s.Annot(n.ID)
		if err != nil {
			continue
		}
		if r == rel && c == col {
			out = append(out, n.ID)
		}
	}
	return out
}
