package schema

import "testing"

const fpDSL = `
schema fp
root a
node a label=A rel=RA
node b label=B rel=RB col=v
edge a -> b
`

func TestFingerprintStable(t *testing.T) {
	s1 := MustParse(fpDSL)
	s2 := MustParse(fpDSL)
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Fatalf("structurally identical schemas fingerprint differently: %s vs %s",
			s1.Fingerprint(), s2.Fingerprint())
	}
	if s1.Fingerprint() != s1.Fingerprint() {
		t.Fatal("fingerprint not memoized stably")
	}
	if len(s1.Fingerprint()) != 32 {
		t.Fatalf("fingerprint length %d, want 32 hex chars", len(s1.Fingerprint()))
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	base := MustParse(fpDSL)
	variants := []string{
		// Different relation annotation.
		`
schema fp
root a
node a label=A rel=RA
node b label=B rel=RX col=v
edge a -> b
`,
		// Different label.
		`
schema fp
root a
node a label=A2 rel=RA
node b label=B rel=RB col=v
edge a -> b
`,
		// Extra condition.
		`
schema fp
root a
node a label=A rel=RA
node b label=B rel=RB col=v cond=kind=1
edge a -> b
`,
		// Extra node and edge.
		`
schema fp
root a
node a label=A rel=RA
node b label=B rel=RB col=v
node c label=C rel=RC
edge a -> b
edge a -> c
`,
	}
	for i, dsl := range variants {
		v := MustParse(dsl)
		if v.Fingerprint() == base.Fingerprint() {
			t.Errorf("variant %d: fingerprint collides with base mapping", i)
		}
	}
}

func TestFingerprintConcurrent(t *testing.T) {
	s := MustParse(fpDSL)
	done := make(chan string, 16)
	for i := 0; i < 16; i++ {
		go func() { done <- s.Fingerprint() }()
	}
	want := <-done
	for i := 1; i < 16; i++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent fingerprint mismatch: %s vs %s", got, want)
		}
	}
}
