package schema

import (
	"fmt"
	"strconv"
	"strings"

	"xmlsql/internal/relational"
)

// Parse reads a schema from the compact text DSL. The format is line based:
//
//	schema <name>
//	root <nodename>
//	node <name> label=<tag> [rel=<relation>] [col=<column>]
//	edge <from> -> <to> [<column>=<int>|<column>='<string>']
//
// Lines may appear in any order except that nodes must be declared before
// edges referencing them; '#' starts a comment. This is the on-disk format
// used by cmd/xml2sql and cmd/shredder.
func Parse(input string) (*Schema, error) {
	var b *Builder
	var rootName string
	var pendingEdges []string

	lines := strings.Split(input, "\n")
	for lineno, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "schema":
			if len(fields) != 2 {
				return nil, fmt.Errorf("schema dsl line %d: want 'schema <name>'", lineno+1)
			}
			if b != nil {
				return nil, fmt.Errorf("schema dsl line %d: duplicate schema declaration", lineno+1)
			}
			b = NewBuilder(fields[1])
		case "root":
			if len(fields) != 2 {
				return nil, fmt.Errorf("schema dsl line %d: want 'root <node>'", lineno+1)
			}
			rootName = fields[1]
		case "node":
			if b == nil {
				b = NewBuilder("schema")
			}
			if err := parseNodeLine(b, fields, lineno+1); err != nil {
				return nil, err
			}
		case "edge":
			pendingEdges = append(pendingEdges, line)
		default:
			return nil, fmt.Errorf("schema dsl line %d: unknown directive %q", lineno+1, fields[0])
		}
	}
	if b == nil {
		return nil, fmt.Errorf("schema dsl: no schema content")
	}
	for _, line := range pendingEdges {
		if err := parseEdgeLine(b, line); err != nil {
			return nil, err
		}
	}
	if rootName == "" {
		return nil, fmt.Errorf("schema dsl: no root declared")
	}
	b.Root(rootName)
	return b.Build()
}

// MustParse parses and panics on error; for schema literals in tests.
func MustParse(input string) *Schema {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

func parseNodeLine(b *Builder, fields []string, lineno int) error {
	if len(fields) < 3 {
		return fmt.Errorf("schema dsl line %d: want 'node <name> label=<tag> ...'", lineno)
	}
	name := fields[1]
	var label string
	var opts []NodeOpt
	for _, f := range fields[2:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("schema dsl line %d: bad attribute %q", lineno, f)
		}
		switch k {
		case "label":
			label = v
		case "rel":
			opts = append(opts, Rel(v))
		case "col":
			opts = append(opts, Col(v))
		case "cond":
			col, valStr, ok := strings.Cut(v, "=")
			if !ok {
				return fmt.Errorf("schema dsl line %d: bad node condition %q (want col=value)", lineno, v)
			}
			val, err := parseLiteral(valStr)
			if err != nil {
				return fmt.Errorf("schema dsl line %d: bad node condition value %q: %v", lineno, valStr, err)
			}
			if val.Kind() == relational.KindInt {
				opts = append(opts, CondInt(col, val.AsInt()))
			} else {
				opts = append(opts, CondString(col, val.AsString()))
			}
		default:
			return fmt.Errorf("schema dsl line %d: unknown attribute %q", lineno, k)
		}
	}
	if label == "" {
		return fmt.Errorf("schema dsl line %d: node %s missing label", lineno, name)
	}
	b.Node(name, label, opts...)
	return nil
}

func parseEdgeLine(b *Builder, line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "edge"))
	var condPart string
	if i := strings.IndexByte(rest, '['); i >= 0 {
		j := strings.IndexByte(rest, ']')
		if j < i {
			return fmt.Errorf("schema dsl: unterminated condition in %q", line)
		}
		condPart = strings.TrimSpace(rest[i+1 : j])
		rest = strings.TrimSpace(rest[:i])
	}
	from, to, ok := strings.Cut(rest, "->")
	if !ok {
		return fmt.Errorf("schema dsl: edge line %q missing '->'", line)
	}
	from = strings.TrimSpace(from)
	to = strings.TrimSpace(to)
	if condPart == "" {
		b.Edge(from, to)
		return nil
	}
	col, valStr, ok := strings.Cut(condPart, "=")
	if !ok {
		return fmt.Errorf("schema dsl: bad edge condition %q", condPart)
	}
	col = strings.TrimSpace(col)
	valStr = strings.TrimSpace(valStr)
	v, err := parseLiteral(valStr)
	if err != nil {
		return fmt.Errorf("schema dsl: bad edge condition value %q: %v", valStr, err)
	}
	if v.Kind() == relational.KindInt {
		b.EdgeCondInt(from, to, col, v.AsInt())
	} else {
		b.EdgeCondString(from, to, col, v.AsString())
	}
	return nil
}

func parseLiteral(s string) (relational.Value, error) {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return relational.String(s[1 : len(s)-1]), nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return relational.Null, err
	}
	return relational.Int(n), nil
}
