package pathexpr_test

import (
	"strings"
	"testing"

	"xmlsql/internal/core"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
)

// FuzzParseQuery drives the whole query-side pipeline with arbitrary input:
// parse, and for accepted queries run PathId and both translators against a
// fixed schema. Nothing may panic — malformed input must surface as errors —
// and both translations of an accepted query must render.
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"//Item/InCategory/Category",
		"/Site/Regions/Africa/Item/InCategory/Category",
		"/Site//Item/InCategory/Category",
		"//Category",
		"/Site/*/Africa",
		"//Item[parentcode='1']/InCategory",
		"//nosuchtag",
		"Item",
		"//",
		"/a[b=']/c",
		"/\x00//",
		strings.Repeat("//Item", 8),
	} {
		f.Add(seed)
	}
	s := workloads.XMark()
	f.Fuzz(func(t *testing.T, input string) {
		p, err := pathexpr.Parse(input)
		if err != nil {
			return
		}
		// Parsing is linear and runs on everything; the cross-product and
		// translation stages are super-linear in query depth, so bound them
		// to keep each fuzz execution fast.
		if len(p.Steps) > 10 {
			return
		}
		g, err := pathid.Build(s, p)
		if err != nil {
			// Queries referencing labels outside the schema legitimately
			// fail here; they must do so with an error, not a panic.
			return
		}
		naive, err := translate.Naive(g)
		if err == nil {
			_ = naive.SQL()
		}
		pruned, err := core.Translate(g)
		if err == nil {
			_ = pruned.Query.SQL()
		}
	})
}
