package pathexpr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in    string
		steps []Step
	}{
		{"/a", []Step{{Label: "a"}}},
		{"//a", []Step{{Descendant: true, Label: "a"}}},
		{"/a/b", []Step{{Label: "a"}, {Label: "b"}}},
		{"/a//b/c", []Step{{Label: "a"}, {Descendant: true, Label: "b"}, {Label: "c"}}},
		{"//Item/InCategory/Category", []Step{{Descendant: true, Label: "Item"}, {Label: "InCategory"}, {Label: "Category"}}},
		{"/a/*//b", []Step{{Label: "a"}, {Label: "*"}, {Descendant: true, Label: "b"}}},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(p.Steps, c.steps) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, p.Steps, c.steps)
		}
		if p.String() != c.in {
			t.Errorf("String() = %q, want %q", p.String(), c.in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "a", "/", "//", "/a//", "/a b", "///a", "/a/"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestMatchesBasics(t *testing.T) {
	cases := []struct {
		q      string
		labels []string
		want   bool
	}{
		{"/a", []string{"a"}, true},
		{"/a", []string{"b"}, false},
		{"/a", []string{"a", "b"}, false},
		{"/a/b", []string{"a", "b"}, true},
		{"//b", []string{"a", "b"}, true},
		{"//b", []string{"a", "x", "b"}, true},
		{"//b", []string{"a"}, false},
		{"/a//c", []string{"a", "b", "c"}, true},
		{"/a//c", []string{"a", "c"}, true},
		{"/a//c", []string{"x", "b", "c"}, false},
		{"/a/*", []string{"a", "anything"}, true},
		{"//a//a", []string{"a", "a"}, true},
		{"//a//a", []string{"a"}, false},
		{"/Site/Regions/Africa", []string{"Site", "Regions", "Africa"}, true},
	}
	for _, c := range cases {
		p := MustParse(c.q)
		if got := p.Matches(c.labels); got != c.want {
			t.Errorf("%q.Matches(%v) = %v, want %v", c.q, c.labels, got, c.want)
		}
	}
}

// TestDFAEquivalentToNFA is the automaton property test: on random queries
// and random label sequences, the subset-construction DFA must accept
// exactly when the NFA simulation does.
func TestDFAEquivalentToNFA(t *testing.T) {
	labels := []string{"a", "b", "c", "d"}
	gen := func(rng *rand.Rand) (*Path, []string) {
		n := 1 + rng.Intn(4)
		q := ""
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				q += "/"
			} else {
				q += "//"
			}
			if rng.Intn(8) == 0 {
				q += "*"
			} else {
				q += labels[rng.Intn(len(labels))]
			}
		}
		m := rng.Intn(7)
		seq := make([]string, m)
		for i := range seq {
			// Include labels outside the query's alphabet.
			pool := append([]string{}, labels...)
			pool = append(pool, "z", "w")
			seq[i] = pool[rng.Intn(len(pool))]
		}
		return MustParse(q), seq
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		p, seq := gen(rng)
		dfa := BuildDFA(p)
		if got, want := dfa.Run(seq), p.Matches(seq); got != want {
			t.Fatalf("DFA.Run(%v) = %v, NFA = %v for query %s", seq, got, want, p)
		}
	}
}

// TestDFARunPrefixIndependence: running the DFA stepwise must equal Run.
func TestDFARunStepwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := MustParse("//a/b//c")
		dfa := BuildDFA(p)
		labels := []string{"a", "b", "c", "x"}
		n := rng.Intn(8)
		st := dfa.Start()
		var seq []string
		for i := 0; i < n; i++ {
			l := labels[rng.Intn(len(labels))]
			seq = append(seq, l)
			st = dfa.Step(st, l)
		}
		return dfa.Accepting(st) == p.Matches(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDFADeadStates(t *testing.T) {
	p := MustParse("/a/b")
	dfa := BuildDFA(p)
	// After consuming "x" at the root, no continuation can match.
	st := dfa.Step(dfa.Start(), "x")
	if !dfa.Dead(st) {
		t.Error("state after wrong root label must be dead")
	}
	st = dfa.Step(dfa.Start(), "a")
	if dfa.Dead(st) {
		t.Error("state after correct prefix must be live")
	}
}

func TestLabels(t *testing.T) {
	p := MustParse("/a//b/a/*")
	got := p.Labels()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Labels() = %v", got)
	}
}

func TestDFAStateCountReasonable(t *testing.T) {
	// Subset construction on SPE NFAs stays small (states are subsets of a
	// chain); guard against blowup regressions.
	p := MustParse("//a//b//c//d//e")
	dfa := BuildDFA(p)
	if dfa.NumStates() > 64 {
		t.Errorf("DFA has %d states for a 5-step query", dfa.NumStates())
	}
}
