// Package pathexpr implements simple path expressions (SPEs, §3.3 of the
// paper) — queries of the form "s1 l1 s2 l2 … sk lk" where each si is / or //
// and each li is a tag name — together with the query automaton of [9]: an
// NFA over element-label sequences and its subset-construction DFA.
//
// A root-to-node label sequence <l1 … ln> matches the query iff it is in the
// language  T(s1 l1) T(s2 l2) …  where T(/l) = l and T(//l) = Σ* l.
package pathexpr

import (
	"fmt"
	"strings"
)

// Wildcard is the label that matches any tag.
const Wildcard = "*"

// Step is one navigation step of a path expression.
type Step struct {
	// Descendant is true for // (ancestor-descendant), false for /
	// (parent-child).
	Descendant bool
	// Label is the tag name, or Wildcard.
	Label string
	// Pred is the optional step predicate "[child='value']".
	Pred *Pred
}

// Path is a parsed simple path expression.
type Path struct {
	Steps []Step
	raw   string
}

// String returns the original query text.
func (p *Path) String() string { return p.raw }

// Parse parses an SPE such as "/Site/Regions//Item" or "//Category".
func Parse(input string) (*Path, error) {
	s := strings.TrimSpace(input)
	if s == "" {
		return nil, fmt.Errorf("pathexpr: empty query")
	}
	if s[0] != '/' {
		return nil, fmt.Errorf("pathexpr: query %q must start with / or //", input)
	}
	p := &Path{raw: s}
	i := 0
	for i < len(s) {
		if s[i] != '/' {
			return nil, fmt.Errorf("pathexpr: expected / at offset %d of %q", i, input)
		}
		desc := false
		i++
		if i < len(s) && s[i] == '/' {
			desc = true
			i++
		}
		j := i
		for j < len(s) && s[j] != '/' && s[j] != '[' {
			j++
		}
		label := s[i:j]
		if label == "" {
			return nil, fmt.Errorf("pathexpr: empty step label in %q", input)
		}
		if err := validateLabel(label); err != nil {
			return nil, fmt.Errorf("pathexpr: %v in %q", err, input)
		}
		step := Step{Descendant: desc, Label: label}
		if j < len(s) && s[j] == '[' {
			end := strings.IndexByte(s[j:], ']')
			if end < 0 {
				return nil, fmt.Errorf("pathexpr: unterminated predicate in %q", input)
			}
			pred, err := parsePred(s[j+1 : j+end])
			if err != nil {
				return nil, fmt.Errorf("pathexpr: %v in %q", err, input)
			}
			step.Pred = pred
			j += end + 1
		}
		p.Steps = append(p.Steps, step)
		i = j
	}
	// At most one predicate per label, so predicate satisfaction is a
	// single bit per element in the query automaton.
	predOf := map[string]*Pred{}
	for _, st := range p.Steps {
		if st.Pred == nil {
			continue
		}
		if st.Label == Wildcard {
			return nil, fmt.Errorf("pathexpr: predicate on wildcard step in %q", input)
		}
		if prev, ok := predOf[st.Label]; ok && (prev.Child != st.Pred.Child || prev.Value != st.Pred.Value) {
			return nil, fmt.Errorf("pathexpr: label %q carries two different predicates in %q", st.Label, input)
		}
		predOf[st.Label] = st.Pred
	}
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("pathexpr: query %q has no steps", input)
	}
	return p, nil
}

// MustParse parses and panics on error; for query literals.
func MustParse(input string) *Path {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

// parsePred parses the inside of a step predicate: child='value'.
func parsePred(body string) (*Pred, error) {
	child, rest, ok := strings.Cut(body, "=")
	if !ok {
		return nil, fmt.Errorf("bad predicate %q (want child='value')", body)
	}
	child = strings.TrimSpace(child)
	rest = strings.TrimSpace(rest)
	if err := validateLabel(child); err != nil {
		return nil, err
	}
	if len(rest) < 2 || rest[0] != '\'' || rest[len(rest)-1] != '\'' {
		return nil, fmt.Errorf("predicate value %q must be single-quoted", rest)
	}
	return &Pred{Child: child, Value: rest[1 : len(rest)-1]}, nil
}

func validateLabel(l string) error {
	if l == Wildcard {
		return nil
	}
	for _, r := range l {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
		default:
			return fmt.Errorf("invalid character %q in step label %q", r, l)
		}
	}
	return nil
}

// Matches reports whether the root-to-node label sequence matches the query.
// This is the reference (NFA-simulation) implementation used to validate the
// DFA; both are exercised by property tests.
func (p *Path) Matches(labels []string) bool {
	// state set: bitmask over 0..len(Steps); state i = "first i steps
	// matched". Small queries, so a map works for arbitrary length.
	cur := map[int]bool{0: true}
	for _, l := range labels {
		next := map[int]bool{}
		for st := range cur {
			if st < len(p.Steps) {
				step := p.Steps[st]
				if step.Descendant {
					next[st] = true // stay (skip this element)
				}
				if step.Label == Wildcard || step.Label == l {
					next[st+1] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	return cur[len(p.Steps)]
}

// Labels returns the distinct non-wildcard labels used by the query.
func (p *Path) Labels() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range p.Steps {
		if s.Label == Wildcard || seen[s.Label] {
			continue
		}
		seen[s.Label] = true
		out = append(out, s.Label)
	}
	return out
}
