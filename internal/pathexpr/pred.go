package pathexpr

import (
	"fmt"
	"sort"
	"strings"
)

// Pred is a step predicate "[child='value']": the element matches the step
// only if it has a child element with the given label whose text equals the
// value. Predicates are the paper's §6 "more general class of XML queries"
// extension; translation supports them when the predicate child is stored
// as a value column of the matched element's tuple.
type Pred struct {
	Child string
	Value string
}

func (p *Pred) String() string { return "[" + p.Child + "='" + p.Value + "']" }

// HasPreds reports whether any step carries a predicate.
func (p *Path) HasPreds() bool {
	for _, s := range p.Steps {
		if s.Pred != nil {
			return true
		}
	}
	return false
}

// PredForLabel returns the predicate attached to steps with the given
// label. Parsing enforces at most one predicate per label, which keeps the
// automaton's satisfaction alphabet binary per symbol.
func (p *Path) PredForLabel(label string) *Pred {
	for _, s := range p.Steps {
		if s.Label == label && s.Pred != nil {
			return s.Pred
		}
	}
	return nil
}

// MatchesPred is the predicate-aware NFA matcher: satFor reports, for each
// consumed element (indexed by its depth in the label sequence), whether it
// satisfies the predicate attached to the step it would advance.
func (p *Path) MatchesPred(labels []string, satFor func(level int) bool) bool {
	cur := map[int]bool{0: true}
	for level, l := range labels {
		next := map[int]bool{}
		for st := range cur {
			if st >= len(p.Steps) {
				continue
			}
			step := p.Steps[st]
			if step.Descendant {
				next[st] = true
			}
			if step.Label == Wildcard || step.Label == l {
				if step.Pred == nil || satFor(level) {
					next[st+1] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	return cur[len(p.Steps)]
}

// PredDFA is the deterministic query automaton over the enriched alphabet
// (label, predicate-satisfied): elements whose label carries a predicate
// step transition differently depending on whether they satisfy it.
type PredDFA struct {
	start   int
	accept  []bool
	trans   [][]int
	symbols map[string]int // label -> base symbol index (x2 when pred'd)
	hasPred map[string]bool
	nSyms   int
}

// BuildPredDFA compiles a (possibly predicated) path expression.
func BuildPredDFA(p *Path) *PredDFA {
	labels := p.Labels()
	sort.Strings(labels)
	d := &PredDFA{symbols: map[string]int{}, hasPred: map[string]bool{}}
	idx := 0
	for _, l := range labels {
		d.symbols[l] = idx
		if p.PredForLabel(l) != nil {
			d.hasPred[l] = true
			idx += 2 // (l, sat) and (l, unsat)
		} else {
			idx++
		}
	}
	other := idx
	d.nSyms = idx + 1

	// Decode a symbol back to (labelIdx, sat) during NFA stepping.
	type symInfo struct {
		label string
		sat   bool
		other bool
	}
	infos := make([]symInfo, d.nSyms)
	for _, l := range labels {
		base := d.symbols[l]
		if d.hasPred[l] {
			infos[base] = symInfo{label: l, sat: true}
			infos[base+1] = symInfo{label: l, sat: false}
		} else {
			infos[base] = symInfo{label: l, sat: false}
		}
	}
	infos[other] = symInfo{other: true}

	nfaStep := func(states []int, sym int) []int {
		info := infos[sym]
		set := map[int]bool{}
		for _, st := range states {
			if st >= len(p.Steps) {
				continue
			}
			step := p.Steps[st]
			if step.Descendant {
				set[st] = true
			}
			labelMatches := step.Label == Wildcard || (!info.other && step.Label == info.label)
			if !labelMatches {
				continue
			}
			if step.Pred != nil && !info.sat {
				continue
			}
			set[st+1] = true
		}
		out := make([]int, 0, len(set))
		for s := range set {
			out = append(out, s)
		}
		sort.Ints(out)
		return out
	}

	encode := func(states []int) string {
		var b strings.Builder
		for i, s := range states {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
		return b.String()
	}

	index := map[string]int{}
	var subsets [][]int
	add := func(states []int) int {
		k := encode(states)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(subsets)
		index[k] = id
		subsets = append(subsets, states)
		d.trans = append(d.trans, make([]int, d.nSyms))
		acc := false
		for _, s := range states {
			if s == len(p.Steps) {
				acc = true
			}
		}
		d.accept = append(d.accept, acc)
		return id
	}
	d.start = add([]int{0})
	for work := 0; work < len(subsets); work++ {
		for sym := 0; sym < d.nSyms; sym++ {
			d.trans[work][sym] = add(nfaStep(subsets[work], sym))
		}
	}
	return d
}

// Start returns the start state.
func (d *PredDFA) Start() int { return d.start }

// Accepting reports whether the state accepts.
func (d *PredDFA) Accepting(state int) bool { return d.accept[state] }

// Step advances on an element with the given label; sat reports whether the
// element satisfies the predicate attached to that label (ignored for
// labels without predicates).
func (d *PredDFA) Step(state int, label string, sat bool) int {
	base, ok := d.symbols[label]
	if !ok {
		return d.trans[state][d.nSyms-1] // other
	}
	if d.hasPred[label] && !sat {
		return d.trans[state][base+1]
	}
	return d.trans[state][base]
}

// HasPred reports whether elements with this label are predicate-sensitive.
func (d *PredDFA) HasPred(label string) bool { return d.hasPred[label] }

// Dead reports whether no accepting state is reachable from the state.
func (d *PredDFA) Dead(state int) bool {
	seen := make([]bool, len(d.trans))
	stack := []int{state}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		if d.accept[s] {
			return false
		}
		for _, t := range d.trans[s] {
			if !seen[t] {
				stack = append(stack, t)
			}
		}
	}
	return true
}
