package pathexpr

import "testing"

// FuzzParse checks the parser never panics and that accepted queries
// round-trip through String and drive the automata without crashing.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"/a",
		"//Item/InCategory/Category",
		"/a//b/c",
		"/a/*",
		"//Item[name='x']/Category",
		"//a[x='1']//a[x='1']",
		"/a[b=''']",
		"///",
		"/a[",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return
		}
		// Accepted queries must re-parse to the same steps.
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q) failed: %v", input, p.String(), err)
		}
		if len(p2.Steps) != len(p.Steps) {
			t.Fatalf("reparse step count differs for %q", input)
		}
		// And drive both automata without panicking.
		dfa := BuildDFA(p)
		pdfa := BuildPredDFA(p)
		st, pst := dfa.Start(), pdfa.Start()
		for _, l := range []string{"a", "b", "zz"} {
			st = dfa.Step(st, l)
			pst = pdfa.Step(pst, l, true)
			pst = pdfa.Step(pst, l, false)
		}
		_ = dfa.Accepting(st)
		_ = pdfa.Accepting(pst)
	})
}
