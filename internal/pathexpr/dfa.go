package pathexpr

import (
	"sort"
	"strings"
)

// DFA is the deterministic query automaton obtained from the SPE's NFA by
// subset construction. Its input alphabet is the set of labels mentioned in
// the query plus a catch-all "other" symbol; any label not in the query maps
// to "other". The PathId stage runs this DFA along schema paths, and the
// pruning stage relies on determinism to enumerate non-matching paths (§5.2).
type DFA struct {
	start  int
	accept []bool
	// trans[state][symbol] -> state; symbol len(symbols) entries plus the
	// trailing "other" column.
	trans   [][]int
	symbols map[string]int
	nSyms   int // including "other"
	// hasWildcard records whether the query used *, in which case "other"
	// labels can still advance steps.
	states []string // canonical subset keys, for debugging
}

// BuildDFA compiles the path expression into a DFA.
func BuildDFA(p *Path) *DFA {
	labels := p.Labels()
	sort.Strings(labels)
	symbols := make(map[string]int, len(labels))
	for i, l := range labels {
		symbols[l] = i
	}
	nSyms := len(labels) + 1 // + "other"
	other := len(labels)

	d := &DFA{symbols: symbols, nSyms: nSyms}

	// NFA states are 0..len(Steps); subsets encoded as sorted int lists.
	type subset = string
	encode := func(states []int) subset {
		sort.Ints(states)
		var b strings.Builder
		for i, s := range states {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(itoa(s))
		}
		return b.String()
	}
	// nfaStep computes the successor subset on a symbol; sym == other means
	// a label not mentioned in the query, wildcard steps still fire.
	nfaStep := func(states []int, sym int) []int {
		nextSet := map[int]bool{}
		for _, st := range states {
			if st >= len(p.Steps) {
				continue
			}
			step := p.Steps[st]
			if step.Descendant {
				nextSet[st] = true
			}
			switch {
			case step.Label == Wildcard:
				nextSet[st+1] = true
			case sym != other && symbols[step.Label] == sym:
				nextSet[st+1] = true
			}
		}
		out := make([]int, 0, len(nextSet))
		for s := range nextSet {
			out = append(out, s)
		}
		sort.Ints(out)
		return out
	}

	index := map[subset]int{}
	var subsets [][]int
	add := func(states []int) int {
		k := encode(states)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(subsets)
		index[k] = id
		subsets = append(subsets, states)
		d.trans = append(d.trans, make([]int, nSyms))
		acc := false
		for _, s := range states {
			if s == len(p.Steps) {
				acc = true
			}
		}
		d.accept = append(d.accept, acc)
		d.states = append(d.states, k)
		return id
	}

	startID := add([]int{0})
	d.start = startID
	for work := 0; work < len(subsets); work++ {
		for sym := 0; sym < nSyms; sym++ {
			succ := nfaStep(subsets[work], sym)
			d.trans[work][sym] = add(succ)
		}
	}
	return d
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Start returns the start state.
func (d *DFA) Start() int { return d.start }

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.trans) }

// Accepting reports whether the state is accepting.
func (d *DFA) Accepting(state int) bool { return d.accept[state] }

// Step advances the DFA on an element label.
func (d *DFA) Step(state int, label string) int {
	sym, ok := d.symbols[label]
	if !ok {
		sym = d.nSyms - 1 // "other"
	}
	return d.trans[state][sym]
}

// Run runs the DFA over a label sequence from the start state and reports
// acceptance.
func (d *DFA) Run(labels []string) bool {
	st := d.start
	for _, l := range labels {
		st = d.Step(st, l)
	}
	return d.accept[st]
}

// Dead reports whether the state can never reach an accepting state.
func (d *DFA) Dead(state int) bool {
	seen := make([]bool, len(d.trans))
	stack := []int{state}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		if d.accept[s] {
			return false
		}
		for _, t := range d.trans[s] {
			if !seen[t] {
				stack = append(stack, t)
			}
		}
	}
	return true
}
