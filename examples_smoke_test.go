package xmlsql_test

import (
	"os/exec"
	"strings"
	"testing"
)

// Example smoke tests: every example program must run to completion and
// print its key output. Skipped with -short (they compile via `go run`).

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the example binaries")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"./examples/quickstart", []string{"lossless-from-XML constraint verified", "titles:"}},
		{"./examples/xmark", []string{"== //Item/InCategory/Category", "rows; baseline"}},
		{"./examples/recursive", []string{"== Q4", "== Q7", "pruned SQL:"}},
		{"./examples/edge", []string{"Edge relation:", "item categories returned by both translations"}},
		{"./examples/adex", []string{"speedup", "//Ad/Contact/Phone"}},
		{"./examples/inference", []string{"inferred mapping:", "byte-exact reconstruction of 2 documents: true"}},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			for _, w := range c.want {
				if w != "" && !strings.Contains(string(out), w) {
					t.Errorf("%s output missing %q", c.dir, w)
				}
			}
		})
	}
}
