package xmlsql_test

import (
	"context"
	"testing"

	"xmlsql"
	"xmlsql/internal/backend/fakedb"
)

// parseTestDoc returns the shared example document.
func parseTestDoc(t *testing.T) *xmlsql.Document {
	t.Helper()
	doc, err := xmlsql.ParseDocumentString(testDoc)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestBackendAPI(t *testing.T) {
	s := xmlsql.MustParseSchema(testSchema)
	doc := parseTestDoc(t)

	mem := xmlsql.NewMemBackend()
	if err := mem.EnsureSchema(s); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Load(s, doc); err != nil {
		t.Fatal(err)
	}

	db := xmlsql.NewDBBackend(fakedb.Open(), xmlsql.DialectSQLite)
	defer db.Close()
	if err := db.EnsureSchema(s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load(s, doc); err != nil {
		t.Fatal(err)
	}

	tr, err := xmlsql.Translate(s, xmlsql.MustParseQuery("//Item/Name"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := xmlsql.ExecuteOn(context.Background(), mem, tr.Query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := xmlsql.ExecuteOn(context.Background(), db, tr.Query)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != 3 {
		t.Fatalf("expected 3 names, got %d", want.Len())
	}
	if !want.MultisetEqual(got) {
		t.Fatalf("db backend diverges from mem:\n%s", want.MultisetDiff(got))
	}
}

func TestPlannerExecOnBackend(t *testing.T) {
	s := xmlsql.MustParseSchema(testSchema)
	doc := parseTestDoc(t)

	db := xmlsql.NewDBBackend(fakedb.Open(), xmlsql.DialectPostgres)
	if err := db.EnsureSchema(s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load(s, doc); err != nil {
		t.Fatal(err)
	}
	p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{Backend: db})
	for i := 0; i < 3; i++ {
		res, err := p.Exec(context.Background(), "//Item/Name")
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 3 {
			t.Fatalf("run %d: expected 3 rows, got %d", i, res.Len())
		}
	}
	st := p.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 2 hits / 1 miss", st)
	}
}

func TestPlannerExecDefaultsToMem(t *testing.T) {
	s := xmlsql.MustParseSchema(testSchema)
	p := xmlsql.NewPlanner(s)
	b := p.Backend()
	if b.Name() != "mem" {
		t.Fatalf("default backend = %s, want mem", b.Name())
	}
	if _, err := b.Load(s, parseTestDoc(t)); err != nil {
		t.Fatal(err)
	}
	res, err := p.Exec(context.Background(), "//Item/Name")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("expected 3 rows, got %d", res.Len())
	}
}

func TestGenerateDDLAndLoadScript(t *testing.T) {
	s := xmlsql.MustParseSchema(testSchema)
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, parseTestDoc(t)); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*xmlsql.Dialect{xmlsql.DialectSQLite, xmlsql.DialectPostgres} {
		ddl, err := xmlsql.GenerateDDL(s, d)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		load := xmlsql.GenerateLoadScript(store, d)

		raw := fakedb.Open()
		if _, err := raw.Exec(ddl); err != nil {
			t.Fatalf("%s: exec ddl: %v", d.Name(), err)
		}
		if _, err := raw.Exec(load); err != nil {
			t.Fatalf("%s: exec load: %v", d.Name(), err)
		}
		db := xmlsql.NewDBBackend(raw, d)
		res, err := db.Execute(context.Background(), mustTranslate(t, s, "//Item/Name"))
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if res.Len() != 3 {
			t.Fatalf("%s: expected 3 rows from scripted database, got %d", d.Name(), res.Len())
		}
		db.Close()
	}
}

func mustTranslate(t *testing.T, s *xmlsql.Schema, query string) *xmlsql.SQL {
	t.Helper()
	tr, err := xmlsql.Translate(s, xmlsql.MustParseQuery(query))
	if err != nil {
		t.Fatal(err)
	}
	return tr.Query
}

func TestDialectByName(t *testing.T) {
	for _, name := range []string{"default", "sqlite", "postgres"} {
		d, err := xmlsql.DialectByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Name() != name {
			t.Fatalf("DialectByName(%q).Name() = %q", name, d.Name())
		}
	}
	if _, err := xmlsql.DialectByName("oracle"); err == nil {
		t.Fatal("unknown dialect should error")
	}
}
